"""A single cache server, API-compatible with the memcached operations
CacheGenie relies on: ``get``/``gets``, ``set``/``add``/``cas``, ``delete``,
``incr``/``decr``, ``flush_all``, and ``stats``.

Values are arbitrary Python objects (clients of real memcached serialize
values; we keep them as objects and account their serialized size for
eviction purposes).  Expiry is evaluated lazily against a clock callable so
the simulation's virtual clock can drive it.
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import CacheKeyError, CacheValueError, NodeDownError
from .item import Item, sizeof_value
from .lru import LRUStore
from .stats import CacheStats

#: memcached's classic limits.
MAX_KEY_LENGTH = 250
DEFAULT_MAX_ITEM_BYTES = 1024 * 1024

#: Per-key verdicts of a (batched) compare-and-swap, mirroring the memcached
#: text protocol's three CAS responses.
CAS_STORED = "stored"      # token matched; the new value was written
CAS_MISMATCH = "mismatch"  # key exists but was rewritten since the gets (EXISTS)
CAS_MISSING = "missing"    # key is gone — evicted/expired/deleted (NOT_FOUND)
CAS_TOO_LARGE = "too-large"  # value exceeds max_item_bytes (SERVER_ERROR);
                             # retrying cannot help — invalidate instead

#: Per-key states of a lease read (the leased-invalidation protocol, after
#: the lease design in Nishtala et al., *Scaling Memcache at Facebook*).
LEASE_HIT = "hit"            # live fresh entry: an ordinary cache hit
LEASE_STALE = "stale"        # stale-retained value served; someone else holds
                             # the lease (or the issue rate limit), don't recompute
LEASE_ACQUIRED = "acquired"  # caller won the lease token: it is the one
                             # reader responsible for recomputing this key


class _StaleEntry:
    """A recently lease-deleted value, retained for stale serving."""

    __slots__ = ("value", "stale_until")

    def __init__(self, value: Any, stale_until: float) -> None:
        self.value = value
        self.stale_until = stale_until


class CacheServer:
    """One memcached-like server instance."""

    def __init__(
        self,
        name: str = "cache0",
        capacity_bytes: int = 64 * 1024 * 1024,
        max_item_bytes: int = DEFAULT_MAX_ITEM_BYTES,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.store = LRUStore(capacity_bytes)
        self.max_item_bytes = max_item_bytes
        self.clock = clock or _time.monotonic
        #: Liveness flag driven by the cluster controller's kill/revive: a
        #: dead node rejects every operation with :class:`NodeDownError`
        #: (the client checks this first and fails fast without a round
        #: trip).  ``flush_all`` stays allowed — reviving flushes the node,
        #: because a real restart comes back empty.
        self.alive = True
        self.stats = CacheStats()
        self._cas_counter = itertools.count(1)
        #: Recently lease-deleted values, servable as stale during their
        #: retention window (Facebook's "recently deleted items" structure).
        self._stale: Dict[str, _StaleEntry] = {}
        #: Per-key (timestamp, window) of the last lease token issued: the
        #: timestamp rate-limits token grants, the window lets the sweep
        #: prune records once their rate-limit period has passed.
        self._lease_issued_at: Dict[str, Tuple[float, float]] = {}
        #: Distinct claimants seen in the current lease window per key (the
        #: token winner plus every rate-limited stale reader); feeds the
        #: ``herd_size_max`` contention stat.  The winner's identity decides
        #: whether a rate-limited read counts as *contended*: the same
        #: claimant re-reading its own window is rate limiting working as
        #: intended, a different claimant is a real race.
        self._lease_herd: Dict[str, set] = {}
        self._lease_winner: Dict[str, Any] = {}
        #: Keys that already passed :meth:`_check_key` validation; None =
        #: disabled (the default — compiled-trace replays switch it on).
        #: Validation is a pure predicate of the key string, so remembering
        #: a pass cannot change any verdict, only skip the re-scan.
        self._validated_keys: Optional[set] = None

    # -- validation -----------------------------------------------------------

    def enable_key_cache(self) -> None:
        if self._validated_keys is None:
            self._validated_keys = set()

    def disable_key_cache(self) -> None:
        self._validated_keys = None

    def _check_alive(self) -> None:
        if not self.alive:
            self.stats.node_down_errors += 1
            raise NodeDownError(f"cache node {self.name!r} is down")

    def _check_key(self, key: str) -> None:
        self._check_alive()
        validated = self._validated_keys
        if validated is not None and isinstance(key, str) and key in validated:
            return
        if not isinstance(key, str) or not key:
            raise CacheKeyError(f"invalid cache key {key!r}")
        if len(key) > MAX_KEY_LENGTH:
            raise CacheKeyError(f"cache key longer than {MAX_KEY_LENGTH} bytes: {key[:40]}...")
        if any(ch.isspace() or ord(ch) < 33 for ch in key):
            raise CacheKeyError(f"cache key contains whitespace/control chars: {key!r}")
        if validated is not None:
            validated.add(key)

    def _expiry(self, expire: Optional[float]) -> Optional[float]:
        if expire is None or expire == 0:
            return None
        return self.clock() + float(expire)

    def _live_item(self, key: str, *, touch: bool = True) -> Optional[Item]:
        item = self.store.get(key, touch=touch)
        if item is None:
            return None
        if item.is_expired(self.clock()):
            self.store.delete(key)
            self.stats.expirations += 1
            return None
        return item

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Return the value for ``key`` or None on a miss."""
        self._check_key(key)
        self.stats.gets += 1
        item = self._live_item(key)
        if item is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return item.value

    def gets(self, key: str) -> Tuple[Optional[Any], Optional[int]]:
        """Return ``(value, cas_token)`` — the CAS form of :meth:`get`."""
        self._check_key(key)
        self.stats.gets += 1
        item = self._live_item(key)
        if item is None:
            self.stats.misses += 1
            return None, None
        self.stats.hits += 1
        return item.value, item.cas_id

    def get_multi(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Batched :meth:`get`: return the values of the keys that hit.

        One network round trip carries the whole batch (the client charges
        round-trip costs); hit/miss statistics still count per key.
        """
        out: Dict[str, Any] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    def gets_multi(self, keys: Sequence[str]) -> Dict[str, Tuple[Any, int]]:
        """Batched :meth:`gets`: ``{key: (value, cas_token)}`` for the hits.

        The CAS form of :meth:`get_multi` — the read half of the batched
        read-modify-write protocol (``gets_multi`` + ``cas_multi``).
        """
        out: Dict[str, Tuple[Any, int]] = {}
        for key in keys:
            value, token = self.gets(key)
            if value is not None:
                out[key] = (value, token)
        return out

    def touch_key(self, key: str) -> bool:
        """Return True if the key is present (without counting a get)."""
        return self._live_item(key, touch=False) is not None

    # -- writes ---------------------------------------------------------------

    def _store(self, key: str, value: Any, expire: Optional[float], flags: int) -> None:
        size = len(key) + sizeof_value(value) + 56
        if size > self.max_item_bytes:
            raise CacheValueError(
                f"item of {size} bytes exceeds the {self.max_item_bytes}-byte limit"
            )
        item = Item(key=key, value=value, cas_id=next(self._cas_counter),
                    flags=flags, expires_at=self._expiry(expire), size=size)
        evicted = self.store.put(item)
        self.stats.evictions += len(evicted)
        # A fresh store supersedes any stale-retained value for the key.
        self._stale.pop(key, None)

    def set(self, key: str, value: Any, expire: Optional[float] = None, flags: int = 0) -> bool:
        """Unconditionally store a value."""
        self._check_key(key)
        self.stats.sets += 1
        self._store(key, value, expire, flags)
        return True

    def add(self, key: str, value: Any, expire: Optional[float] = None, flags: int = 0) -> bool:
        """Store only if the key is absent; returns False if it exists."""
        self._check_key(key)
        self.stats.adds += 1
        if self._live_item(key, touch=False) is not None:
            return False
        self._store(key, value, expire, flags)
        return True

    def set_multi(self, mapping: Mapping[str, Any],
                  expire: Optional[float] = None, flags: int = 0) -> List[str]:
        """Batched :meth:`set`.  Returns the keys that failed to store."""
        failed: List[str] = []
        for key, value in mapping.items():
            try:
                self.set(key, value, expire, flags)
            except CacheValueError:
                failed.append(key)
        return failed

    def cas(self, key: str, value: Any, cas_token: int,
            expire: Optional[float] = None, flags: int = 0) -> bool:
        """Compare-and-swap: store only if the item's CAS id still matches."""
        return self.cas_verdict(key, value, cas_token, expire, flags) == CAS_STORED

    def cas_verdict(self, key: str, value: Any, cas_token: int,
                    expire: Optional[float] = None, flags: int = 0) -> str:
        """:meth:`cas` distinguishing why a swap failed.

        Returns :data:`CAS_STORED`, :data:`CAS_MISMATCH` (the token went
        stale — a retry with a fresh ``gets`` can win), or
        :data:`CAS_MISSING` (the entry vanished — a retry cannot help).
        """
        self._check_key(key)
        item = self._live_item(key, touch=False)
        if item is None:
            self.stats.cas_miss += 1
            return CAS_MISSING
        if item.cas_id != cas_token:
            self.stats.cas_mismatch += 1
            return CAS_MISMATCH
        self._store(key, value, expire, flags)  # may reject an oversized value
        self.stats.cas_ok += 1
        # A successful CAS stores a value just like set() does.
        self.stats.sets += 1
        return CAS_STORED

    def cas_multi(self, items: Mapping[str, Tuple[Any, int]],
                  expire: Optional[float] = None, flags: int = 0) -> Dict[str, str]:
        """Batched :meth:`cas`: ``{key: (value, cas_token)}`` in, per-key
        verdicts out.

        Each key is swapped independently — one stale token does not poison
        the batch — so callers can retry exactly the :data:`CAS_MISMATCH`
        losers.  Per-key statistics match N single ``cas`` calls.
        """
        out: Dict[str, str] = {}
        for key, (value, token) in items.items():
            try:
                out[key] = self.cas_verdict(key, value, token, expire, flags)
            except CacheValueError:
                # Parity with set_multi: an oversized value fails only its
                # key — and re-reading cannot shrink it, so the verdict is
                # distinct from a mismatch (callers invalidate, not retry).
                out[key] = CAS_TOO_LARGE
        return out

    def delete(self, key: str) -> bool:
        """Remove a key; returns True if it existed."""
        self._check_key(key)
        self.stats.deletes += 1
        # Consistency with the lease read path: an expired stale retention
        # is already gone, so it must not count as "existed".
        retained = self._stale_entry(key) is not None
        self._stale.pop(key, None)
        return self.store.delete(key) or retained

    def delete_multi(self, keys: Sequence[str]) -> List[str]:
        """Batched :meth:`delete`.  Returns the keys that actually existed."""
        return [key for key in keys if self.delete(key)]

    # -- leases (stale-retaining invalidation) ---------------------------------

    #: Sweep the stale-retention buffer for expired entries once it exceeds
    #: this many keys (amortized cleanup for cold keys never re-read).
    _STALE_SWEEP_THRESHOLD = 1024

    def _sweep_stale(self) -> None:
        """Drop expired stale retentions and spent rate-limit records so
        cold, never-re-read keys do not accumulate without bound (live
        entries are inherently bounded by the activity of one window)."""
        now = self.clock()
        if len(self._stale) > self._STALE_SWEEP_THRESHOLD:
            for key in [k for k, e in self._stale.items()
                        if now >= e.stale_until]:
                del self._stale[key]
                self._lease_issued_at.pop(key, None)
        if len(self._lease_issued_at) > self._STALE_SWEEP_THRESHOLD:
            for key in [k for k, (issued, window)
                        in self._lease_issued_at.items()
                        if now - issued >= window]:
                del self._lease_issued_at[key]
                self._lease_herd.pop(key, None)
                self._lease_winner.pop(key, None)

    def lease_delete(self, key: str, stale_seconds: float) -> bool:
        """Invalidate ``key`` but *retain* its value as servable-stale.

        The live entry is removed (reads no longer count it as a hit) and
        its value moves to the recently-deleted buffer for ``stale_seconds``,
        where :meth:`lease` can serve it while one lease holder recomputes.
        Returns True if the key existed (live or already stale-retained).
        """
        self._check_key(key)
        self.stats.deletes += 1
        self.stats.lease_deletes += 1
        self._sweep_stale()
        item = self._live_item(key, touch=False)
        if item is not None:
            self.store.delete(key)
            self._stale[key] = _StaleEntry(item.value,
                                           self.clock() + float(stale_seconds))
            return True
        entry = self._stale_entry(key)
        if entry is not None:
            # Another invalidation during the window: extend the retention
            # (the value is already stale; staleness is still bounded by
            # ``stale_seconds`` past the *latest* write).
            entry.stale_until = self.clock() + float(stale_seconds)
            return True
        return False

    def lease_delete_multi(self, keys: Sequence[str],
                           stale_seconds: float) -> List[str]:
        """Batched :meth:`lease_delete`.  Returns the keys that existed."""
        return [key for key in keys if self.lease_delete(key, stale_seconds)]

    def _stale_entry(self, key: str) -> Optional[_StaleEntry]:
        entry = self._stale.get(key)
        if entry is None:
            return None
        if self.clock() >= entry.stale_until:
            del self._stale[key]
            return None
        return entry

    def lease(self, key: str, lease_seconds: float,
              claimant: Any = None) -> Tuple[str, Optional[Any], Optional[int]]:
        """Read ``key`` under the lease protocol.

        ``claimant`` identifies the reading context (the concurrent replay
        passes its worker id; serial callers leave it None).  It feeds the
        contention statistics only: ``lease_contended`` counts rate-limited
        reads whose claimant differs from the window's token winner, and
        ``herd_size_max`` tracks the most *distinct* claimants racing one
        key's window.

        Returns ``(state, value, token)``:

        * :data:`LEASE_HIT` — a live fresh entry; ``value`` is it.
        * :data:`LEASE_ACQUIRED` — the caller won the lease token and is the
          one reader that should recompute.  ``value`` is the stale-retained
          value if one exists (serve it; recompute in the background) or
          None on a true miss (recompute on the critical path, as usual).
        * :data:`LEASE_STALE` — a stale-retained value served while another
          reader holds the lease (or the per-key token rate limit of one
          token per ``lease_seconds`` is in effect): do not recompute.

        Token issuance is rate-limited per key — at most one token every
        ``lease_seconds`` — which is what bounds a hot key's recompute rate
        however many invalidations and readers hit it.
        """
        self._check_key(key)
        self.stats.gets += 1
        item = self._live_item(key)
        if item is not None:
            self.stats.hits += 1
            return LEASE_HIT, item.value, None
        now = self.clock()
        record = self._lease_issued_at.get(key)
        issued = record[0] if record is not None else None
        can_issue = issued is None or (now - issued) >= float(lease_seconds)
        entry = self._stale_entry(key)
        if entry is None and issued is not None and can_issue:
            # Lazy pruning: with no stale value retained and the rate-limit
            # window passed, the record carries no information — drop it so
            # a churning key space doesn't grow this map without bound (the
            # lease_delete-time sweep catches keys never read again).
            del self._lease_issued_at[key]
            self._lease_herd.pop(key, None)
            self._lease_winner.pop(key, None)
        if entry is not None:
            self.stats.hits += 1
            self.stats.stale_hits += 1
            if can_issue:
                self._lease_issued_at[key] = (now, float(lease_seconds))
                self.stats.leases_granted += 1
                # A fresh window opens with one claimant: the token winner.
                self._lease_winner[key] = claimant
                self._lease_herd[key] = {claimant}
                self.stats.herd_size_max = max(self.stats.herd_size_max, 1)
                return LEASE_ACQUIRED, entry.value, next(self._cas_counter)
            # Rate-limited.  A *different* claimant wanting the token while
            # the winner holds it is the contended case the concurrent
            # replay measures; the winner re-reading its own window is the
            # rate limit doing its job.
            if claimant != self._lease_winner.get(key):
                self.stats.lease_contended += 1
            herd = self._lease_herd.setdefault(key, {self._lease_winner.get(key)})
            herd.add(claimant)
            self.stats.herd_size_max = max(self.stats.herd_size_max, len(herd))
            return LEASE_STALE, entry.value, None
        # True miss: nothing retained.  Always grant, and without starting
        # the rate-limit window — the caller must go to the database anyway,
        # and its set repopulates the key for everyone; the limit exists to
        # bound recomputes of *stale-retained* (hot, invalidated) keys.
        self.stats.misses += 1
        self.stats.leases_granted += 1
        return LEASE_ACQUIRED, None, next(self._cas_counter)

    def lease_multi(self, keys: Sequence[str], lease_seconds: float,
                    claimant: Any = None,
                    ) -> Dict[str, Tuple[str, Optional[Any], Optional[int]]]:
        """Batched :meth:`lease`: ``{key: (state, value, token)}``."""
        return {key: self.lease(key, lease_seconds, claimant) for key in keys}

    def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Increment an integer value; returns the new value or None on miss."""
        self._check_key(key)
        item = self._live_item(key, touch=False)
        if item is None or not isinstance(item.value, int):
            self.stats.incr_miss += 1
            return None
        self.stats.incr_ok += 1
        new_value = item.value + delta
        self._store(key, new_value, None, item.flags)
        return new_value

    def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Decrement an integer value, floored at zero as memcached does."""
        self._check_key(key)
        item = self._live_item(key, touch=False)
        if item is None or not isinstance(item.value, int):
            self.stats.decr_miss += 1
            return None
        self.stats.decr_ok += 1
        new_value = max(0, item.value - delta)
        self._store(key, new_value, None, item.flags)
        return new_value

    def incr_multi(self, deltas: Mapping[str, int]) -> Dict[str, Optional[int]]:
        """Batched counter adjustment: ``{key: signed_delta}`` in, new values out.

        Positive deltas increment, negative deltas decrement (floored at
        zero, as :meth:`decr` does) — one wire batch can carry a mixed run,
        which is what a group-moving UPDATE's ``-1``/``+1`` pair needs.
        Per-key statistics match N single ``incr``/``decr`` calls; misses
        (absent or non-integer values) report None for their key.
        """
        out: Dict[str, Optional[int]] = {}
        for key, delta in deltas.items():
            if delta >= 0:
                out[key] = self.incr(key, delta)
            else:
                out[key] = self.decr(key, -delta)
        return out

    def decr_multi(self, deltas: Mapping[str, int]) -> Dict[str, Optional[int]]:
        """Batched :meth:`decr`: ``{key: delta}`` with deltas applied negatively."""
        return self.incr_multi({key: -delta for key, delta in deltas.items()})

    def flush_all(self) -> None:
        """Drop every item (stale-retained values included)."""
        self.store.clear()
        self._stale.clear()
        self._lease_issued_at.clear()
        self._lease_herd.clear()
        self._lease_winner.clear()

    # -- introspection --------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self.store.used_bytes

    @property
    def item_count(self) -> int:
        return len(self.store)

    def stats_dict(self) -> Dict[str, float]:
        out = self.stats.as_dict()
        # Summed across a fleet this is the live-node count.
        out["alive"] = 1.0 if self.alive else 0.0
        out["curr_items"] = self.item_count
        out["bytes"] = self.used_bytes
        out["limit_maxbytes"] = self.store.capacity_bytes
        out["lru_evictions"] = self.store.evictions
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CacheServer {self.name}: {self.item_count} items, {self.used_bytes}B>"
