"""Hit/miss/eviction statistics for cache servers and clients."""

from __future__ import annotations

from typing import Dict, Tuple

from .._counters import compile_counter_methods

#: Field names of :class:`CacheStats`, in declaration order (the slots
#: equivalent of ``dataclasses.fields()``; the unrolled hot methods are
#: compiled from this tuple — see :mod:`repro._counters`).
CACHE_STAT_FIELDS: Tuple[str, ...] = (
    "gets", "hits", "misses", "sets", "adds", "deletes",
    "cas_ok", "cas_mismatch", "cas_miss",
    "incr_ok", "incr_miss", "decr_ok", "decr_miss",
    "evictions", "expirations",
    # Lease protocol (leased invalidation): tokens granted, stale values
    # served from the recently-deleted buffer, and stale-retaining deletes.
    "leases_granted", "stale_hits", "lease_deletes",
    # Lease contention (the concurrent-worker replay makes these nonzero):
    # readers that wanted the recompute token while the per-key window was
    # already claimed, and the largest herd — claimants racing one key's
    # lease window (the token winner plus every stale-served reader).
    "lease_contended", "herd_size_max",
    # Cluster dynamics: operations that failed fast against a dead node and
    # the gutter-pool fallback's hit/miss split for those keys.
    "node_down_errors", "gutter_hits", "gutter_misses",
    # Adaptive per-key consistency: band reclassifications and the cache
    # invalidations issued solely to migrate a key between bands.
    "band_switches", "adaptive_migrations",
)


class CacheStats:
    """Operation counters in the spirit of memcached's ``stats`` command.

    A ``__slots__`` counter bag (historically a dataclass; the keyword
    constructor with 0 defaults is unchanged) whose hot methods are
    unrolled over :data:`CACHE_STAT_FIELDS`.
    """

    __slots__ = CACHE_STAT_FIELDS

    #: Field-name tuple, the slots equivalent of ``dataclasses.fields()``.
    FIELDS = CACHE_STAT_FIELDS

    #: Fields that aggregate by ``max`` instead of summing: a high-water
    #: mark summed across servers (or across stat snapshots) is meaningless.
    _MAX_FIELDS = frozenset({"herd_size_max"})

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = self._counters_as_dict()
        out["hit_ratio"] = self.hit_ratio
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in CACHE_STAT_FIELDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = ", ".join(f"{name}={getattr(self, name)}"
                            for name in CACHE_STAT_FIELDS
                            if getattr(self, name))
        return f"CacheStats({nonzero})"


for _name, _method in compile_counter_methods(
        CACHE_STAT_FIELDS, max_fields=CacheStats._MAX_FIELDS).items():
    # The generated as_dict is the raw field mapping; the public as_dict
    # above adds the derived hit_ratio key on top of it.
    setattr(CacheStats, "_counters_as_dict" if _name == "as_dict" else _name,
            _method)
del _name, _method
