"""Hit/miss/eviction statistics for cache servers and clients."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class CacheStats:
    """Operation counters in the spirit of memcached's ``stats`` command."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    sets: int = 0
    adds: int = 0
    deletes: int = 0
    cas_ok: int = 0
    cas_mismatch: int = 0
    cas_miss: int = 0
    incr_ok: int = 0
    incr_miss: int = 0
    decr_ok: int = 0
    decr_miss: int = 0
    evictions: int = 0
    expirations: int = 0
    # Lease protocol (leased invalidation): tokens granted, stale values
    # served from the recently-deleted buffer, and stale-retaining deletes.
    leases_granted: int = 0
    stale_hits: int = 0
    lease_deletes: int = 0
    # Lease contention (the concurrent-worker replay makes these nonzero):
    # readers that wanted the recompute token while the per-key window was
    # already claimed, and the largest herd — claimants racing one key's
    # lease window (the token winner plus every stale-served reader).
    lease_contended: int = 0
    herd_size_max: int = 0
    # Cluster dynamics: operations that failed fast against a dead node and
    # the gutter-pool fallback's hit/miss split for those keys.
    node_down_errors: int = 0
    gutter_hits: int = 0
    gutter_misses: int = 0

    #: Fields that aggregate by ``max`` instead of summing: a high-water
    #: mark summed across servers (or across stat snapshots) is meaningless.
    _MAX_FIELDS = frozenset({"herd_size_max"})

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_ratio"] = self.hit_ratio
        return out

    def add(self, other: "CacheStats") -> None:
        for f in fields(self):
            if f.name in self._MAX_FIELDS:
                setattr(self, f.name, max(getattr(self, f.name),
                                          getattr(other, f.name)))
            else:
                setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)
