"""Consistent hashing ring for distributing keys across cache servers.

The paper stresses that CacheGenie maintains *a single logical cache across
many cache servers* (unlike SI-cache's per-application-server caches), which
in practice means client-side key partitioning — memcached clients use
consistent hashing (ketama).  This ring implements that scheme with virtual
nodes so adding/removing a server only remaps a small fraction of keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

from ..errors import CacheServerError


def _hash(value: str) -> int:
    """Stable 32-bit hash of a string (md5-based, like ketama)."""
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class RingSnapshot:
    """Frozen copy of a :class:`HashRing`'s state.

    Supports the same ``server_for`` lookup as the live ring, so the cluster
    controller can diff key ownership before/after a membership change
    without replaying the change (``snap.server_for(k) != ring.server_for(k)``
    marks ``k`` as remapped) — and can hand the copy back to ``restore``.
    """

    __slots__ = ("replicas", "_ring", "_sorted_points", "_servers")

    def __init__(self, ring: "HashRing") -> None:
        self.replicas = ring.replicas
        self._ring = dict(ring._ring)
        self._sorted_points = list(ring._sorted_points)
        self._servers = list(ring._servers)

    @property
    def servers(self) -> List[str]:
        return list(self._servers)

    def server_for(self, key: str) -> str:
        """Return the server that was responsible for ``key`` at snapshot time."""
        if not self._sorted_points:
            raise CacheServerError("hash ring snapshot is empty")
        point = _hash(key)
        idx = bisect.bisect_right(self._sorted_points, point)
        if idx == len(self._sorted_points):
            idx = 0
        return self._ring[self._sorted_points[idx]]


class HashRing:
    """Consistent-hash ring mapping keys to named servers."""

    def __init__(self, servers: Sequence[str], replicas: int = 100) -> None:
        if not servers:
            raise CacheServerError("hash ring requires at least one server")
        if replicas < 1:
            raise CacheServerError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: Dict[int, str] = {}
        self._sorted_points: List[int] = []
        self._servers: List[str] = []
        #: key -> owning server memo; None = disabled (the default — only
        #: compiled-trace replays switch it on).  Placement is pure given
        #: fixed membership, so the memo is cleared on every membership
        #: change (add/remove/restore) and cannot change any lookup.
        self._placement: "Dict[str, str] | None" = None
        for server in servers:
            self.add_server(server)

    @property
    def servers(self) -> List[str]:
        return list(self._servers)

    def enable_placement_cache(self) -> None:
        if self._placement is None:
            self._placement = {}

    def disable_placement_cache(self) -> None:
        self._placement = None

    def add_server(self, server: str) -> None:
        """Add a server and its virtual nodes to the ring."""
        if server in self._servers:
            raise CacheServerError(f"server {server!r} already on the ring")
        if self._placement:
            self._placement.clear()
        self._servers.append(server)
        for i in range(self.replicas):
            point = _hash(f"{server}#{i}")
            # Hash collisions across virtual nodes are vanishingly rare but
            # must not silently drop a node; nudge until free.
            while point in self._ring:
                point = (point + 1) % (1 << 32)
            self._ring[point] = server
            bisect.insort(self._sorted_points, point)

    def remove_server(self, server: str) -> None:
        """Remove a server and its virtual nodes from the ring."""
        if server not in self._servers:
            raise CacheServerError(f"server {server!r} not on the ring")
        if self._placement:
            self._placement.clear()
        self._servers.remove(server)
        points = [p for p, s in self._ring.items() if s == server]
        for point in points:
            del self._ring[point]
            idx = bisect.bisect_left(self._sorted_points, point)
            del self._sorted_points[idx]

    def snapshot(self) -> RingSnapshot:
        """Capture the current membership as a frozen :class:`RingSnapshot`."""
        return RingSnapshot(self)

    def restore(self, snapshot: RingSnapshot) -> None:
        """Reinstate the membership captured by ``snapshot``."""
        if snapshot.replicas != self.replicas:
            raise CacheServerError(
                f"snapshot was taken with replicas={snapshot.replicas}, "
                f"this ring uses replicas={self.replicas}")
        if self._placement:
            self._placement.clear()
        self._ring = dict(snapshot._ring)
        self._sorted_points = list(snapshot._sorted_points)
        self._servers = list(snapshot._servers)

    def server_for(self, key: str) -> str:
        """Return the server responsible for ``key``."""
        placement = self._placement
        if placement is not None:
            server = placement.get(key)
            if server is not None:
                return server
        if not self._sorted_points:
            raise CacheServerError("hash ring is empty")
        point = _hash(key)
        idx = bisect.bisect_right(self._sorted_points, point)
        if idx == len(self._sorted_points):
            idx = 0
        server = self._ring[self._sorted_points[idx]]
        if placement is not None:
            placement[key] = server
        return server

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count how many of ``keys`` map to each server (for tests/metrics)."""
        counts = {server: 0 for server in self._servers}
        for key in keys:
            counts[self.server_for(key)] += 1
        return counts
