"""memcached substrate: LRU cache servers and a consistent-hashing client.

Implements the subset of memcached that CacheGenie depends on — get/gets,
set/add/cas, delete, incr/decr, flush_all, byte-capped LRU eviction, expiry,
and stats — plus the batched multi-key forms (get/gets/set/cas/delete
``*_multi``) and a multi-server client with consistent hashing so the system
presents a single logical cache (§2, Table 1 of the paper).
"""

from .client import CacheClient
from .hashring import HashRing
from .item import Item, sizeof_value
from .lru import LRUStore
from .server import (CAS_MISMATCH, CAS_MISSING, CAS_STORED, CAS_TOO_LARGE,
                     CacheServer)
from .stats import CacheStats

__all__ = [
    "CAS_MISMATCH",
    "CAS_MISSING",
    "CAS_STORED",
    "CAS_TOO_LARGE",
    "CacheClient",
    "CacheServer",
    "CacheStats",
    "HashRing",
    "Item",
    "LRUStore",
    "sizeof_value",
]
