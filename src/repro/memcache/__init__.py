"""memcached substrate: LRU cache servers and a consistent-hashing client.

Implements the subset of memcached that CacheGenie depends on — get/gets,
set/add/cas, delete, incr/decr, flush_all, byte-capped LRU eviction, expiry,
and stats — plus a multi-server client with consistent hashing so the system
presents a single logical cache (§2, Table 1 of the paper).
"""

from .client import CacheClient
from .hashring import HashRing
from .item import Item, sizeof_value
from .lru import LRUStore
from .server import CacheServer
from .stats import CacheStats

__all__ = [
    "CacheClient",
    "CacheServer",
    "CacheStats",
    "HashRing",
    "Item",
    "LRUStore",
    "sizeof_value",
]
