"""The cache client used by the application and by database triggers.

The client routes keys to servers via consistent hashing, aggregates
statistics, and charges every round trip to the shared cost recorder so the
simulation can model cache-network time.  Two "contexts" exist:

* the application client (``from_trigger=False``) — charges ``cache_*`` events;
* the trigger client (``from_trigger=True``) — charges ``trigger_cache_ops``
  and, once per trigger-side client construction, a connection-open cost,
  reproducing the paper's observation that opening a remote memcached
  connection inside a trigger dominates trigger overhead (§5.3).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CacheServerError
from ..storage.costmodel import Recorder
from .hashring import HashRing
from .item import sizeof_value
from .server import (CAS_MISMATCH, CAS_MISSING, CAS_STORED, CAS_TOO_LARGE,
                     LEASE_ACQUIRED, LEASE_HIT, LEASE_STALE, CacheServer)
from .stats import CacheStats


class CacheClient:
    """Client over one or more :class:`CacheServer` instances.

    With ``pipeline_batches`` enabled, the per-server batches of one
    multi-key call are issued concurrently instead of one after another:
    the call's network time is the ``max`` of its per-server round trips
    (charged as one full batch plus latency-free *overlapped* batches)
    rather than their ``sum``.  Real memcached clients do exactly this —
    each server has its own socket, so nothing serializes the batches.
    """

    def __init__(
        self,
        servers: Sequence[CacheServer],
        recorder: Optional[Recorder] = None,
        from_trigger: bool = False,
        reuse_connections: bool = False,
        pipeline_batches: bool = False,
    ) -> None:
        if not servers:
            raise CacheServerError("CacheClient requires at least one server")
        self._servers: Dict[str, CacheServer] = {s.name: s for s in servers}
        if len(self._servers) != len(servers):
            raise CacheServerError("cache server names must be unique")
        self.ring = HashRing(list(self._servers))
        #: Optional gutter pool (set by the cluster controller): a small
        #: fallback server set this client routes to when a key's primary
        #: node is dead.  Gutter entries are short-TTL, and the pool speaks
        #: no CAS and no leases — reads either hit a recently re-set value
        #: or miss through to the database.
        self.gutter: Optional[Any] = None
        self.recorder = recorder or Recorder()
        self.from_trigger = from_trigger
        self.reuse_connections = reuse_connections
        self.pipeline_batches = pipeline_batches
        self._connected = False
        self.stats = CacheStats()
        #: Cooperative-scheduling hook (installed only by the concurrent
        #: replayer): called with ``"cache:<op>"`` after each multi-key
        #: operation completes — a round-trip boundary where another worker
        #: may legally run (which is what lets two workers race a
        #: gets_multi/cas_multi pair on the same key).
        self.checkpoint: Optional[Callable[[str], None]] = None
        #: Worker attribution: the concurrent replayer sets
        #: ``current_worker`` while a worker context runs, and every round
        #: trip the client issues is tallied against it here.
        self.current_worker: Optional[Any] = None
        self.ops_by_worker: Dict[Any, int] = {}
        #: Which worker won each key's most recent lease window (every
        #: lease read flows through this client, so the map stays exact):
        #: a rate-limited read is *contended* only when a different worker
        #: holds the window's token.
        self._lease_winners: Dict[str, Any] = {}
        #: Optional per-key telemetry sink (adaptive consistency): a
        #: :class:`~repro.adaptive.telemetry.KeyTelemetry` attached by the
        #: adaptive strategy.  None everywhere else — every hook is guarded.
        self.telemetry: Optional[Any] = None

    # -- connection / accounting ----------------------------------------------

    def _charge_connection(self) -> None:
        """Charge the connection-open cost for trigger-side clients.

        The paper's future-work optimization — reusing connections between
        triggers — is modeled by ``reuse_connections``: when enabled, only the
        first operation pays the connection cost.
        """
        if not self.from_trigger:
            return
        if self._connected and self.reuse_connections:
            return
        if not self._connected:
            self.recorder.record("trigger_connections")
            self._connected = True
        elif not self.reuse_connections:
            # Each trigger invocation opens a fresh connection; callers create
            # a new logical connection by calling reset_connection().
            pass

    def reset_connection(self) -> None:
        """Mark the trigger-side connection as closed (fired per trigger)."""
        if not self.reuse_connections:
            self._connected = False

    def _server_for(self, key: str) -> CacheServer:
        return self._servers[self.ring.server_for(key)]

    def _group_by_server(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Partition ``keys`` into per-server batches via the hash ring.

        Duplicates are dropped (one wire slot per key) but the first-seen
        order within each server batch is preserved.
        """
        batches: Dict[str, List[str]] = {}
        seen = set()
        for key in keys:
            if key in seen:
                continue
            seen.add(key)
            batches.setdefault(self.ring.server_for(key), []).append(key)
        return batches

    def _node_down(self, server: CacheServer, n: int = 1) -> None:
        """Account ``n`` fail-fast refusals against a dead node.

        Counted on the client *and* on the dead server's stats, and recorded
        as ``cache_node_down`` cost events — free in the cost model, because
        a refused connection is not a round trip.  The caller then surfaces
        the operation as a miss (or routes it to the gutter pool).
        """
        self.stats.node_down_errors += n
        server.stats.node_down_errors += n
        self.recorder.record("cache_node_down", n)

    def _attribute_round_trip(self) -> None:
        """Tally one round trip against the active worker context (if any)."""
        worker = self.current_worker
        if worker is not None:
            self.ops_by_worker[worker] = self.ops_by_worker.get(worker, 0) + 1

    def _charge_single(self, app_event: str) -> None:
        """Charge one single-key round trip (``app_event`` from the
        application; trigger-side clients fold into ``trigger_cache_ops``)."""
        self._attribute_round_trip()
        if self.from_trigger:
            self.recorder.record("trigger_cache_ops")
        else:
            self.recorder.record(app_event)

    def _charge_batch(self, app_event: str, index: int = 0) -> None:
        """Charge one round trip for a multi-key batch sent to one server.

        ``index`` is the batch's position within its multi-op call.  When
        batches are pipelined, only the first batch of a call pays network
        latency; the rest overlap with it and are charged as latency-free
        overlapped round trips.
        """
        self._attribute_round_trip()
        overlapped = self.pipeline_batches and index > 0
        if self.from_trigger:
            self.recorder.record("trigger_cache_overlapped_batches" if overlapped
                                 else "trigger_cache_batches")
        else:
            self.recorder.record("cache_overlapped_batches" if overlapped
                                 else app_event)

    def _yield_point(self, op: str) -> None:
        """Give the interleave scheduler a turn after a multi-op round trip."""
        if self.checkpoint is not None:
            self.checkpoint(f"cache:{op}")

    def _charge_batch_item(self) -> None:
        """Charge the per-key (marshalling) share of a batched operation."""
        if self.from_trigger:
            self.recorder.record("trigger_cache_batch_ops")

    @property
    def servers(self) -> List[CacheServer]:
        return list(self._servers.values())

    # -- reads ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Fetch a value; returns None on a miss.

        A dead primary fails fast (``cache_node_down``, no round trip) and
        the read falls through to the gutter pool when one is attached.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.gets += 1
            if self.gutter is None:
                self.stats.misses += 1
                self.recorder.record("cache_misses")
                return None
            value = self.gutter.get(key)
            self._charge_single("cache_gets")
            if value is None:
                self.stats.misses += 1
                self.stats.gutter_misses += 1
                self.recorder.record("cache_misses")
            else:
                self.stats.hits += 1
                self.stats.gutter_hits += 1
                self.recorder.record("cache_hits")
                self.recorder.record("cache_bytes_moved", sizeof_value(value))
            return value
        value = server.get(key)
        self.stats.gets += 1
        self._charge_single("cache_gets")
        if value is None:
            self.stats.misses += 1
            self.recorder.record("cache_misses")
        else:
            self.stats.hits += 1
            self.recorder.record("cache_hits")
            self.recorder.record("cache_bytes_moved", sizeof_value(value))
        return value

    def gets(self, key: str) -> Tuple[Optional[Any], Optional[int]]:
        """Fetch a value together with its CAS token.

        A dead primary is a plain miss: the gutter pool speaks no CAS, so
        there is no token to hand out and no swap to attempt later.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.gets += 1
            self.stats.misses += 1
            self.recorder.record("cache_misses")
            return None, None
        value, token = server.gets(key)
        self.stats.gets += 1
        self._charge_single("cache_gets")
        if value is None:
            self.stats.misses += 1
            self.recorder.record("cache_misses")
        else:
            self.stats.hits += 1
            self.recorder.record("cache_hits")
            self.recorder.record("cache_bytes_moved", sizeof_value(value))
        return value, token

    def get_multi(self, keys: Sequence[str]) -> Dict[str, Any]:
        """Fetch several keys in one round trip per server; returns the hits.

        Keys are grouped into per-server batches on the hash ring and each
        batch is charged a single round trip (``cache_multi_gets`` from the
        application, ``trigger_cache_batches`` from a trigger) — the batched
        protocol the paper's §5.3 round-trip analysis motivates.  Hit/miss
        statistics and byte transfer are still accounted per key.
        """
        if not keys:
            return {}
        self._charge_connection()
        out: Dict[str, Any] = {}
        for index, (server_name, batch) in enumerate(self._group_by_server(keys).items()):
            server = self._servers[server_name]
            if not server.alive:
                # One refused connection per dead batch; the gutter lookup
                # (when attached) is a real round trip of its own.
                self._node_down(server)
                found = {}
                if self.gutter is not None:
                    self._charge_batch("cache_multi_gets", index)
                    found = self.gutter.get_multi(batch)
                for key in batch:
                    self.stats.gets += 1
                    self._charge_batch_item()
                    value = found.get(key)
                    if value is None:
                        self.stats.misses += 1
                        if self.gutter is not None:
                            self.stats.gutter_misses += 1
                        self.recorder.record("cache_misses")
                    else:
                        self.stats.hits += 1
                        self.stats.gutter_hits += 1
                        self.recorder.record("cache_hits")
                        self.recorder.record("cache_bytes_moved",
                                             sizeof_value(value))
                        out[key] = value
                continue
            self._charge_batch("cache_multi_gets", index)
            found = server.get_multi(batch)
            for key in batch:
                self.stats.gets += 1
                self._charge_batch_item()
                value = found.get(key)
                if value is None:
                    self.stats.misses += 1
                    self.recorder.record("cache_misses")
                else:
                    self.stats.hits += 1
                    self.recorder.record("cache_hits")
                    self.recorder.record("cache_bytes_moved", sizeof_value(value))
                    out[key] = value
        self._yield_point("get_multi")
        return out

    def gets_multi(self, keys: Sequence[str]) -> Dict[str, Tuple[Any, int]]:
        """Fetch several keys *with their CAS tokens*, batched per server.

        The CAS counterpart of :meth:`get_multi` — the read half of a batched
        read-modify-write (``gets_multi`` + :meth:`cas_multi`).  Accounting
        matches :meth:`get_multi`: one round trip per server batch, hit/miss
        and byte transfer per key.  Returns ``{key: (value, token)}`` for the
        hits.
        """
        if not keys:
            return {}
        self._charge_connection()
        out: Dict[str, Tuple[Any, int]] = {}
        for index, (server_name, batch) in enumerate(self._group_by_server(keys).items()):
            server = self._servers[server_name]
            if not server.alive:
                # No CAS tokens from the gutter: every key is a plain miss,
                # so the flush path treats them like uncached entries.
                self._node_down(server)
                for key in batch:
                    self.stats.gets += 1
                    self._charge_batch_item()
                    self.stats.misses += 1
                    self.recorder.record("cache_misses")
                continue
            self._charge_batch("cache_multi_gets", index)
            found = server.gets_multi(batch)
            for key in batch:
                self.stats.gets += 1
                self._charge_batch_item()
                hit = found.get(key)
                if hit is None:
                    self.stats.misses += 1
                    self.recorder.record("cache_misses")
                else:
                    self.stats.hits += 1
                    self.recorder.record("cache_hits")
                    self.recorder.record("cache_bytes_moved", sizeof_value(hit[0]))
                    out[key] = hit
        # The yield point that makes batched CAS contendable: a worker that
        # just read its tokens can be paused here while another worker
        # writes the same keys, going on to lose the cas_multi.
        self._yield_point("gets_multi")
        return out

    # -- writes ---------------------------------------------------------------

    def set(self, key: str, value: Any, expire: Optional[float] = None) -> bool:
        """Store a value unconditionally.

        A dead primary routes the store to the gutter pool (short gutter
        TTL, whatever ``expire`` says) or reports failure without one.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            if self.gutter is None:
                return False
            self.gutter.set(key, value)
            self.stats.sets += 1
            self._charge_single("cache_sets")
            self.recorder.record("cache_bytes_moved", sizeof_value(value))
            return True
        result = server.set(key, value, expire)
        self.stats.sets += 1
        self._charge_single("cache_sets")
        self.recorder.record("cache_bytes_moved", sizeof_value(value))
        return result

    def set_multi(self, mapping: Dict[str, Any],
                  expire: Optional[float] = None) -> List[str]:
        """Store several values in one round trip per server.

        Returns the keys that failed to store (oversized values), mirroring
        python-memcached's ``set_multi`` contract.
        """
        if not mapping:
            return []
        self._charge_connection()
        failed: List[str] = []
        for index, (server_name, batch) in enumerate(
                self._group_by_server(list(mapping)).items()):
            server = self._servers[server_name]
            if not server.alive:
                self._node_down(server)
                if self.gutter is None:
                    failed.extend(batch)
                    continue
                self._charge_batch("cache_multi_sets", index)
                self.gutter.set_multi({k: mapping[k] for k in batch})
                for key in batch:
                    self._charge_batch_item()
                    self.stats.sets += 1
                    self.recorder.record("cache_bytes_moved",
                                         sizeof_value(mapping[key]))
                continue
            self._charge_batch("cache_multi_sets", index)
            rejected = set(server.set_multi({k: mapping[k] for k in batch}, expire))
            failed.extend(k for k in batch if k in rejected)
            for key in batch:
                self._charge_batch_item()
                if key in rejected:
                    # Parity with single-op set(): a store the server refused
                    # (oversized value) counts neither as a set nor as bytes.
                    continue
                self.stats.sets += 1
                self.recorder.record("cache_bytes_moved", sizeof_value(mapping[key]))
        self._yield_point("set_multi")
        return failed

    def add(self, key: str, value: Any, expire: Optional[float] = None) -> bool:
        """Store a value only if the key is absent."""
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.adds += 1
            if self.gutter is None:
                return False
            result = self.gutter.add(key, value)
            self._charge_single("cache_sets")
            self.recorder.record("cache_bytes_moved", sizeof_value(value))
            return result
        result = server.add(key, value, expire)
        self.stats.adds += 1
        self._charge_single("cache_sets")
        # The value travels to the server whether or not the add wins.
        self.recorder.record("cache_bytes_moved", sizeof_value(value))
        return result

    def cas(self, key: str, value: Any, cas_token: int,
            expire: Optional[float] = None) -> bool:
        """Compare-and-swap a value previously read with :meth:`gets`.

        Against a dead primary the token has vanished with the node: the
        swap fails like a :data:`~repro.memcache.server.CAS_MISSING` (the
        caller's fallback is to invalidate, not retry), with no round trip.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.cas_miss += 1
            return False
        result = server.cas(key, value, cas_token, expire)
        if result:
            self.stats.cas_ok += 1
        else:
            self.stats.cas_mismatch += 1
        # A CAS is its own round-trip event — not a cache_sets — so the
        # ablations can separate conditional from unconditional writes,
        # and a losing CAS no longer masquerades as a stored value.
        self._charge_single("cache_cas")
        # The value travels to the server whether or not the swap wins.
        self.recorder.record("cache_bytes_moved", sizeof_value(value))
        return result

    def cas_multi(self, items: Dict[str, Tuple[Any, int]],
                  expire: Optional[float] = None) -> Dict[str, str]:
        """Compare-and-swap several keys in one round trip per server.

        ``items`` maps each key to ``(new_value, cas_token)`` as returned by
        :meth:`gets_multi`.  Returns a per-key verdict map (``"stored"`` /
        ``"mismatch"`` / ``"missing"``) so callers re-read and retry *only
        the losers* instead of replaying the whole batch.  Every key's value
        travels to its server regardless of the verdict (byte accounting per
        attempt); each mismatch additionally records a ``cas_multi_mismatch``
        event for the CAS-contention ablation.
        """
        if not items:
            return {}
        self._charge_connection()
        verdicts: Dict[str, str] = {}
        for index, (server_name, batch) in enumerate(
                self._group_by_server(list(items)).items()):
            server = self._servers[server_name]
            if not server.alive:
                # The tokens died with the node: every key reports
                # "missing", which callers resolve by invalidating.
                self._node_down(server)
                for key in batch:
                    verdicts[key] = CAS_MISSING
                    self.stats.cas_miss += 1
                continue
            self._charge_batch("cache_multi_cas", index)
            outcome = server.cas_multi({k: items[k] for k in batch}, expire)
            for key in batch:
                self._charge_batch_item()
                verdict = outcome[key]
                verdicts[key] = verdict
                if verdict == CAS_TOO_LARGE:
                    # Parity with set_multi: a store the server refused
                    # (oversized value) counts neither stats nor bytes.
                    continue
                if verdict == CAS_STORED:
                    self.stats.cas_ok += 1
                elif verdict == CAS_MISMATCH:
                    self.stats.cas_mismatch += 1
                    self.recorder.record("cas_multi_mismatch")
                    if self.telemetry is not None:
                        self.telemetry.note_cas_mismatch(key)
                else:
                    self.stats.cas_miss += 1
                self.recorder.record("cache_bytes_moved",
                                     sizeof_value(items[key][0]))
        self._yield_point("cas_multi")
        return verdicts

    def delete(self, key: str) -> bool:
        """Invalidate a key.

        Even with the primary dead, the invalidation still reaches the
        gutter pool — a stale gutter copy outliving the write would break
        the bound the short gutter TTL promises.
        """
        self._charge_connection()
        server = self._server_for(key)
        self.stats.deletes += 1
        if not server.alive:
            self._node_down(server)
            if self.gutter is None:
                return False
            result = self.gutter.delete(key)
            self._charge_single("cache_deletes")
            return result
        result = server.delete(key)
        self._charge_single("cache_deletes")
        return result

    def delete_multi(self, keys: Sequence[str]) -> List[str]:
        """Invalidate several keys in one round trip per server.

        Returns the keys that actually existed (and were removed).
        """
        if not keys:
            return []
        self._charge_connection()
        deleted: List[str] = []
        for index, (server_name, batch) in enumerate(self._group_by_server(keys).items()):
            server = self._servers[server_name]
            if not server.alive:
                # Invalidations still reach the gutter (coherence: a stale
                # gutter copy must not outlive the write that doomed it).
                self._node_down(server)
                if self.gutter is not None:
                    self._charge_batch("cache_multi_deletes", index)
                    deleted.extend(self.gutter.delete_multi(batch))
                for _key in batch:
                    self.stats.deletes += 1
                    self._charge_batch_item()
                continue
            self._charge_batch("cache_multi_deletes", index)
            deleted.extend(server.delete_multi(batch))
            for _key in batch:
                self.stats.deletes += 1
                self._charge_batch_item()
        self._yield_point("delete_multi")
        return deleted

    def lease_delete(self, key: str, stale_seconds: float) -> bool:
        """Invalidate a key, retaining its value as servable-stale.

        The leased-invalidation trigger op: accounting matches
        :meth:`delete` (it is a delete variant on the wire).
        """
        self._charge_connection()
        server = self._server_for(key)
        self.stats.deletes += 1
        self.stats.lease_deletes += 1
        if not server.alive:
            # The gutter keeps no stale-retention buffer (no leases), so the
            # lease variant degrades to a plain gutter delete.
            self._node_down(server)
            if self.gutter is None:
                return False
            result = self.gutter.delete(key)
            self._charge_single("cache_deletes")
            return result
        result = server.lease_delete(key, stale_seconds)
        self._charge_single("cache_deletes")
        return result

    def lease_delete_multi(self, keys: Sequence[str],
                           stale_seconds: float) -> List[str]:
        """Batched :meth:`lease_delete` in one round trip per server.

        Returns the keys that existed (and were moved to stale retention).
        Round-trip accounting matches :meth:`delete_multi` — the flush of a
        leased-invalidation transaction costs what a plain invalidation
        flush costs.
        """
        if not keys:
            return []
        self._charge_connection()
        existed: List[str] = []
        for index, (server_name, batch) in enumerate(self._group_by_server(keys).items()):
            server = self._servers[server_name]
            if not server.alive:
                # No stale retention in the gutter: degrade to plain deletes
                # so no gutter copy outlives the invalidation.
                self._node_down(server)
                if self.gutter is not None:
                    self._charge_batch("cache_multi_deletes", index)
                    existed.extend(self.gutter.delete_multi(batch))
                for _key in batch:
                    self.stats.deletes += 1
                    self.stats.lease_deletes += 1
                    self._charge_batch_item()
                continue
            self._charge_batch("cache_multi_deletes", index)
            existed.extend(server.lease_delete_multi(batch, stale_seconds))
            for _key in batch:
                self.stats.deletes += 1
                self.stats.lease_deletes += 1
                self._charge_batch_item()
        self._yield_point("lease_delete_multi")
        return existed

    def _note_lease_contention(self, key: str, state: str) -> None:
        """Track lease-window winners and record contended stale serves.

        A :data:`LEASE_STALE` read counts as *contended* only when the
        window's token is held by a different worker than the reader —
        the same worker re-reading its own window is just the per-key rate
        limit working (and is what a serial replay produces).
        """
        # The record deliberately survives LEASE_HITs: the server's
        # rate-limit window (and its winner) outlives a fresh store, so a
        # stale read in the same window after a refresh must still compare
        # against that window's winner — pruning here would diverge from
        # the server's verdict.  The map is bounded by the leased key
        # space and cleared by flush_all().
        if state == LEASE_ACQUIRED:
            self._lease_winners[key] = self.current_worker
        elif state == LEASE_STALE and \
                self._lease_winners.get(key) != self.current_worker:
            self.stats.lease_contended += 1
            self.recorder.record("lease_contended")
            if self.telemetry is not None:
                self.telemetry.note_lease_contended(key)

    def lease(self, key: str,
              lease_seconds: float) -> Tuple[str, Optional[Any], Optional[int]]:
        """Read a key under the lease protocol (see CacheServer.lease).

        One round trip, like :meth:`get`; a served value (fresh or stale)
        counts as a hit and moves its bytes, a true miss as a miss.

        A dead primary degrades per the gutter contract: a gutter hit is
        served as :data:`LEASE_STALE` *without a token* (its freshness bound
        is the gutter TTL, and no token means no refresh is scheduled), a
        gutter miss — or no gutter — comes back :data:`LEASE_ACQUIRED` with
        no token, which callers resolve by recomputing synchronously.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.gets += 1
            value = None
            if self.gutter is not None:
                value = self.gutter.get(key)
                self._charge_single("cache_leases")
            if value is not None:
                self.stats.hits += 1
                self.stats.stale_hits += 1
                self.stats.gutter_hits += 1
                self.recorder.record("cache_hits")
                self.recorder.record("cache_bytes_moved", sizeof_value(value))
                return LEASE_STALE, value, None
            if self.gutter is not None:
                self.stats.gutter_misses += 1
            self.stats.misses += 1
            self.recorder.record("cache_misses")
            return LEASE_ACQUIRED, None, None
        state, value, token = server.lease(
            key, lease_seconds, claimant=self.current_worker)
        self.stats.gets += 1
        self._charge_single("cache_leases")
        self._note_lease_contention(key, state)
        if value is None and state != LEASE_HIT:
            self.stats.misses += 1
            self.recorder.record("cache_misses")
        else:
            self.stats.hits += 1
            if state != LEASE_HIT:
                self.stats.stale_hits += 1
            self.recorder.record("cache_hits")
            self.recorder.record("cache_bytes_moved", sizeof_value(value))
        if state == LEASE_ACQUIRED:
            self.stats.leases_granted += 1
        return state, value, token

    def lease_multi(self, keys: Sequence[str], lease_seconds: float,
                    ) -> Dict[str, Tuple[str, Optional[Any], Optional[int]]]:
        """Batched :meth:`lease` in one round trip per server.

        The lease counterpart of :meth:`get_multi`; per-key accounting
        matches N single :meth:`lease` calls.
        """
        if not keys:
            return {}
        self._charge_connection()
        out: Dict[str, Tuple[str, Optional[Any], Optional[int]]] = {}
        for index, (server_name, batch) in enumerate(self._group_by_server(keys).items()):
            server = self._servers[server_name]
            if not server.alive:
                # Same degradation as single-key lease(): gutter hits serve
                # stale with no token, everything else recomputes inline.
                self._node_down(server)
                found = {}
                if self.gutter is not None:
                    self._charge_batch("cache_multi_leases", index)
                    found = self.gutter.get_multi(batch)
                for key in batch:
                    self.stats.gets += 1
                    self._charge_batch_item()
                    value = found.get(key)
                    if value is not None:
                        self.stats.hits += 1
                        self.stats.stale_hits += 1
                        self.stats.gutter_hits += 1
                        self.recorder.record("cache_hits")
                        self.recorder.record("cache_bytes_moved",
                                             sizeof_value(value))
                        out[key] = (LEASE_STALE, value, None)
                    else:
                        if self.gutter is not None:
                            self.stats.gutter_misses += 1
                        self.stats.misses += 1
                        self.recorder.record("cache_misses")
                        out[key] = (LEASE_ACQUIRED, None, None)
                continue
            self._charge_batch("cache_multi_leases", index)
            states = server.lease_multi(batch, lease_seconds,
                                        claimant=self.current_worker)
            for key in batch:
                self.stats.gets += 1
                self._charge_batch_item()
                state, value, token = states[key]
                out[key] = (state, value, token)
                self._note_lease_contention(key, state)
                if value is None and state != LEASE_HIT:
                    self.stats.misses += 1
                    self.recorder.record("cache_misses")
                else:
                    self.stats.hits += 1
                    if state != LEASE_HIT:
                        self.stats.stale_hits += 1
                    self.recorder.record("cache_hits")
                    self.recorder.record("cache_bytes_moved", sizeof_value(value))
                if state == LEASE_ACQUIRED:
                    self.stats.leases_granted += 1
        self._yield_point("lease_multi")
        return out

    def incr(self, key: str, delta: int = 1) -> Optional[int]:
        """Increment an integer value.

        Dead primary → a miss (None): the gutter speaks no counter protocol
        (a counter resurrected at zero would silently corrupt the count), so
        callers fall back to invalidate-and-recompute like any incr miss.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.incr_miss += 1
            return None
        result = server.incr(key, delta)
        self._charge_single("cache_sets")
        if result is None:
            self.stats.incr_miss += 1
        else:
            self.stats.incr_ok += 1
        return result

    def decr(self, key: str, delta: int = 1) -> Optional[int]:
        """Decrement an integer value (floored at zero).

        Dead primary → a miss (None), like :meth:`incr`.
        """
        self._charge_connection()
        server = self._server_for(key)
        if not server.alive:
            self._node_down(server)
            self.stats.decr_miss += 1
            return None
        result = server.decr(key, delta)
        self._charge_single("cache_sets")
        if result is None:
            self.stats.decr_miss += 1
        else:
            self.stats.decr_ok += 1
        return result

    def incr_multi(self, deltas: Dict[str, int]) -> Dict[str, Optional[int]]:
        """Adjust several counters in one round trip per server.

        ``deltas`` maps keys to *signed* deltas (negative values decrement,
        floored at zero like :meth:`decr`), so one batch can carry a mixed
        run such as a group-moving UPDATE's ``-1``/``+1`` pair.  Returns the
        new value per key, or None where the key missed.
        """
        if not deltas:
            return {}
        self._charge_connection()
        out: Dict[str, Optional[int]] = {}
        for index, (server_name, batch) in enumerate(
                self._group_by_server(list(deltas)).items()):
            server = self._servers[server_name]
            if not server.alive:
                # No counter protocol in the gutter (see incr): every key in
                # the dead batch reports a sign-appropriate miss.
                self._node_down(server)
                for key in batch:
                    out[key] = None
                    if deltas[key] >= 0:
                        self.stats.incr_miss += 1
                    else:
                        self.stats.decr_miss += 1
                continue
            self._charge_batch("cache_multi_counters", index)
            results = server.incr_multi({k: deltas[k] for k in batch})
            for key in batch:
                self._charge_batch_item()
                result = results[key]
                out[key] = result
                if deltas[key] >= 0:
                    if result is None:
                        self.stats.incr_miss += 1
                    else:
                        self.stats.incr_ok += 1
                elif result is None:
                    self.stats.decr_miss += 1
                else:
                    self.stats.decr_ok += 1
        self._yield_point("incr_multi")
        return out

    def decr_multi(self, deltas: Dict[str, int]) -> Dict[str, Optional[int]]:
        """Batched :meth:`decr`: ``{key: delta}`` with deltas applied negatively."""
        return self.incr_multi({key: -delta for key, delta in deltas.items()})

    def flush_all(self) -> None:
        """Drop every item on every server (dead nodes included) and in the
        gutter pool, so a full flush leaves no fallback copies behind."""
        for server in self._servers.values():
            server.flush_all()
        if self.gutter is not None:
            self.gutter.flush_all()
        self._lease_winners.clear()

    # -- introspection --------------------------------------------------------

    def aggregate_server_stats(self) -> CacheStats:
        """Sum the per-server statistics."""
        total = CacheStats()
        for server in self._servers.values():
            total.add(server.stats)
        return total

    def total_items(self) -> int:
        return sum(s.item_count for s in self._servers.values())

    def total_used_bytes(self) -> int:
        return sum(s.used_bytes for s in self._servers.values())
