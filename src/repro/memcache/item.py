"""Cache items: value, flags, CAS id, expiry, and size accounting."""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass, field
from typing import Any, Optional


def sizeof_value(value: Any) -> int:
    """Estimate the serialized size of a cached value in bytes.

    Real memcached stores opaque byte strings; clients serialize values
    before sending them.  We estimate the pickled size so that eviction under
    a memory cap behaves realistically without paying full serialization cost
    on every operation for simple types.
    """
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, (int, float, bool)) or value is None:
        return 16
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable exotic objects
        return sys.getsizeof(value)


@dataclass
class Item:
    """One stored cache entry."""

    key: str
    value: Any
    cas_id: int
    flags: int = 0
    #: Absolute expiry time in seconds on the cache's clock; None = no expiry.
    expires_at: Optional[float] = None
    size: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.size:
            self.size = len(self.key) + sizeof_value(self.value) + 56  # item header

    def is_expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at
