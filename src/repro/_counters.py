"""Unrolled method generation for slot-based counter classes.

:class:`~repro.storage.costmodel.CostCounters` and
:class:`~repro.memcache.stats.CacheStats` are pure counter bags that the
replay hot loop constructs, accumulates, and snapshots hundreds of thousands
of times per run.  As dataclasses their ``add``/``as_dict`` walked
``dataclasses.fields()`` on every call — a reflective loop over ~40 field
descriptors per event.  This module compiles the same methods *once*, fully
unrolled over the field-name tuple, for ``__slots__`` classes:

* ``__init__`` — keyword (or positional) construction with 0 defaults,
  exactly the dataclass signature the tests pin;
* ``add`` — straight-line ``self.f += other.f`` statements (``max``
  aggregation for high-water-mark fields);
* ``as_dict`` — a single dict display;
* ``reset`` — straight-line zeroing.

The generated code is deterministic (a pure function of the field tuple), so
counter arithmetic is bit-identical to the reflective version it replaces.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Sequence

#: The empty default for ``max_fields``.
_NO_MAX_FIELDS: FrozenSet[str] = frozenset()


def compile_counter_methods(
    field_names: Sequence[str],
    max_fields: FrozenSet[str] = _NO_MAX_FIELDS,
) -> Dict[str, Callable]:
    """Generate unrolled ``__init__``/``add``/``as_dict``/``reset``.

    ``max_fields`` names the fields that aggregate by ``max`` instead of
    summing in ``add`` (high-water marks).  Returns the method namespace;
    callers attach the entries to their ``__slots__`` class.
    """
    unknown = set(max_fields) - set(field_names)
    if unknown:
        raise ValueError(f"max_fields not in field_names: {sorted(unknown)}")
    args = ", ".join(f"{name}=0" for name in field_names)
    init_body = "\n".join(f"    self.{name} = {name}" for name in field_names)
    add_lines = []
    for name in field_names:
        if name in max_fields:
            add_lines.append(
                f"    if other.{name} > self.{name}:\n"
                f"        self.{name} = other.{name}")
        else:
            add_lines.append(f"    self.{name} += other.{name}")
    add_body = "\n".join(add_lines)
    dict_items = ", ".join(f"{name!r}: self.{name}" for name in field_names)
    reset_body = "\n".join(f"    self.{name} = 0" for name in field_names)
    source = (
        f"def __init__(self, {args}):\n{init_body}\n"
        f"def add(self, other):\n{add_body}\n"
        f"def as_dict(self):\n    return {{{dict_items}}}\n"
        f"def reset(self):\n{reset_body}\n"
    )
    namespace: Dict[str, Callable] = {}
    exec(source, {}, namespace)  # noqa: S102 - static, deterministic source
    return namespace
