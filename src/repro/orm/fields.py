"""Model fields.

Fields describe how a model attribute maps onto a storage-engine column:
its data type, nullability, default, and whether it gets a secondary index.
``ForeignKey`` and ``ManyToManyField`` additionally describe relationships,
which is what CacheGenie's LinkQuery cache class traverses.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from ..errors import FieldError
from ..storage.datatypes import (BOOLEAN, FLOAT, INTEGER, TEXT, TIMESTAMP,
                                 DataType, TextType)


class Field:
    """Base class for model fields."""

    #: Storage data type; subclasses override.
    data_type: DataType = TEXT

    #: Creation order counter so fields keep their declaration order.
    _creation_counter = 0

    def __init__(
        self,
        null: bool = False,
        default: Any = None,
        unique: bool = False,
        db_index: bool = False,
        primary_key: bool = False,
        db_column: Optional[str] = None,
    ) -> None:
        self.null = null
        self.default = default
        self.unique = unique
        self.db_index = db_index
        self.primary_key = primary_key
        self.db_column = db_column
        self.name: Optional[str] = None       # set by the metaclass
        self.model: Optional[type] = None     # set by the metaclass
        self._order = Field._creation_counter
        Field._creation_counter += 1

    # -- metaclass wiring -----------------------------------------------------

    def contribute_to_class(self, model: type, name: str) -> None:
        """Attach this field to ``model`` under attribute ``name``."""
        self.name = name
        self.model = model
        model._meta.add_field(self)

    # -- column mapping -------------------------------------------------------

    @property
    def column(self) -> str:
        """Name of the storage-engine column backing this field."""
        if self.db_column:
            return self.db_column
        if self.name is None:
            raise FieldError("field is not attached to a model yet")
        return self.name

    @property
    def attname(self) -> str:
        """Name of the instance attribute holding the raw column value."""
        return self.name or self.column

    def get_default(self) -> Any:
        if callable(self.default):
            return self.default()
        return self.default

    def to_python(self, value: Any) -> Any:
        """Convert a storage value to the Python-level value."""
        return value

    def get_prep_value(self, value: Any) -> Any:
        """Convert a Python-level value to what the storage engine stores."""
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


class AutoField(Field):
    """Auto-incrementing integer primary key (added implicitly as ``id``)."""

    data_type = INTEGER

    def __init__(self, **kwargs: Any) -> None:
        kwargs.setdefault("primary_key", True)
        super().__init__(**kwargs)


class IntegerField(Field):
    data_type = INTEGER


class FloatField(Field):
    data_type = FLOAT


class BooleanField(Field):
    data_type = BOOLEAN

    def __init__(self, default: Any = False, **kwargs: Any) -> None:
        super().__init__(default=default, **kwargs)


class CharField(Field):
    """Bounded text field."""

    def __init__(self, max_length: int = 255, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.max_length = max_length
        self.data_type = TextType(max_length=max_length)


class TextField(Field):
    """Unbounded text field."""

    data_type = TEXT


class DateTimeField(Field):
    """Timestamp field.

    ``auto_now_add`` fills the field at INSERT time from the clock callable
    configured on the registry (the workload generator installs a virtual
    clock so timestamps are deterministic).
    """

    data_type = TIMESTAMP

    def __init__(self, auto_now_add: bool = False, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.auto_now_add = auto_now_add


class FloatTimestampField(FloatField):
    """A timestamp stored as a float (seconds); simpler for sorting in Top-K."""

    def __init__(self, auto_now_add: bool = False, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.auto_now_add = auto_now_add


class ForeignKey(Field):
    """Many-to-one relationship.

    The storage column is ``<name>_id``; attribute access through the field
    name returns the related model instance (lazy lookup through its manager).
    """

    data_type = INTEGER

    def __init__(self, to: Union[str, type], related_name: Optional[str] = None,
                 **kwargs: Any) -> None:
        kwargs.setdefault("db_index", True)
        super().__init__(**kwargs)
        self.to = to
        self.related_name = related_name

    @property
    def column(self) -> str:
        if self.db_column:
            return self.db_column
        return f"{self.name}_id"

    @property
    def attname(self) -> str:
        return f"{self.name}_id"

    def resolve_target(self, registry) -> type:
        """Resolve the target model class (handles string references)."""
        if isinstance(self.to, str):
            return registry.get_model(self.to)
        return self.to

    def get_prep_value(self, value: Any) -> Any:
        # Accept either a model instance or a raw primary-key value.
        pk = getattr(value, "pk", None)
        return pk if pk is not None else value


class ManyToManyField(Field):
    """Many-to-many relationship implemented through an auto-created join table."""

    data_type = INTEGER

    def __init__(self, to: Union[str, type], related_name: Optional[str] = None,
                 through: Optional[str] = None, **kwargs: Any) -> None:
        super().__init__(null=True, **kwargs)
        self.to = to
        self.related_name = related_name
        self.through = through

    @property
    def column(self) -> str:
        raise FieldError(
            f"ManyToManyField {self.name!r} has no column; use its through table"
        )

    def through_table_name(self) -> str:
        if self.through:
            return self.through
        assert self.model is not None and self.name is not None
        return f"{self.model._meta.db_table}_{self.name}"

    def resolve_target(self, registry) -> type:
        if isinstance(self.to, str):
            return registry.get_model(self.to)
        return self.to
