"""ORM substrate (stands in for Django's model layer).

Provides declarative models, fields, relationships, managers, and lazily
evaluated QuerySets that compile to the storage engine.  The registry exposes
the interception hook CacheGenie uses to serve queries from memcached.
"""

from .fields import (AutoField, BooleanField, CharField, DateTimeField, Field,
                     FloatField, FloatTimestampField, ForeignKey, IntegerField,
                     ManyToManyField, TextField)
from .manager import Manager, RelatedManager
from .models import Model
from .queryset import QueryDescription, QuerySet
from .registry import QueryInterceptor, Registry, default_registry
from .template import ChainStep, Param, QueryTemplate

__all__ = [
    "AutoField",
    "BooleanField",
    "ChainStep",
    "CharField",
    "DateTimeField",
    "Field",
    "FloatField",
    "FloatTimestampField",
    "ForeignKey",
    "IntegerField",
    "Manager",
    "ManyToManyField",
    "Model",
    "Param",
    "QueryDescription",
    "QueryInterceptor",
    "QuerySet",
    "QueryTemplate",
    "Registry",
    "RelatedManager",
    "TextField",
    "default_registry",
]
