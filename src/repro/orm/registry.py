"""Model registry and database binding.

The registry plays the role of Django's app registry plus its database
connection: model classes register themselves at class-definition time, and
``bind()`` attaches a :class:`~repro.storage.database.Database` so the ORM
can create tables and run queries.  Query interceptors (CacheGenie's
transparent cache lookup) also hang off the registry.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from ..errors import ModelError, ORMError
from ..storage.database import Database

if TYPE_CHECKING:  # pragma: no cover
    from .queryset import QueryDescription


class QueryInterceptor:
    """Interface for transparent query interception.

    CacheGenie registers an interceptor that, given a normalized description
    of an ORM query, may return ``(True, result)`` to satisfy it from the
    cache, or ``(False, None)`` to let it proceed to the database.
    """

    def try_fetch(self, description: "QueryDescription"):  # pragma: no cover - interface
        return False, None


class Registry:
    """Holds model classes, the bound database, the clock, and interceptors."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self.models: Dict[str, type] = {}
        self.database: Optional[Database] = None
        self.interceptors: List[QueryInterceptor] = []
        #: Clock used for auto_now_add fields; replaced by the simulation.
        self.clock: Callable[[], float] = _time.time

    # -- model registration ---------------------------------------------------

    def register_model(self, model: type) -> None:
        key = model.__name__.lower()
        self.models[key] = model

    def get_model(self, name: str) -> type:
        try:
            return self.models[name.lower()]
        except KeyError:
            raise ModelError(f"no model named {name!r} is registered") from None

    def model_for_table(self, table_name: str) -> Optional[type]:
        for model in self.models.values():
            if model._meta.db_table == table_name:
                return model
        return None

    # -- database binding -----------------------------------------------------

    def bind(self, database: Database) -> None:
        """Attach a database.  Replaces any previous binding."""
        self.database = database

    def unbind(self) -> None:
        self.database = None
        self.interceptors.clear()

    @property
    def db(self) -> Database:
        if self.database is None:
            raise ORMError(
                f"registry {self.name!r} is not bound to a database; call bind()"
            )
        return self.database

    def create_all(self) -> None:
        """Create storage tables (and M2M through tables) for all models."""
        from .models import Model  # local import to avoid a cycle

        for model in self.models.values():
            if not issubclass(model, Model):  # pragma: no cover - defensive
                continue
            schema = model._meta.build_schema()
            if not self.db.has_table(schema.name):
                self.db.create_table(schema)
        # Through tables are created after base tables so FK targets exist.
        for model in self.models.values():
            for m2m_schema in model._meta.build_m2m_schemas(self):
                if not self.db.has_table(m2m_schema.name):
                    self.db.create_table(m2m_schema)

    def drop_all(self) -> None:
        """Drop every table this registry created (best effort)."""
        if self.database is None:
            return
        for model in list(self.models.values()):
            table = model._meta.db_table
            if self.db.has_table(table):
                self.db.drop_table(table)
            for m2m_schema in model._meta.build_m2m_schemas(self):
                if self.db.has_table(m2m_schema.name):
                    self.db.drop_table(m2m_schema.name)

    # -- interception ---------------------------------------------------------

    def add_interceptor(self, interceptor: QueryInterceptor) -> None:
        self.interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: QueryInterceptor) -> None:
        if interceptor in self.interceptors:
            self.interceptors.remove(interceptor)

    def intercept(self, description: "QueryDescription"):
        """Offer a query to every interceptor; first hit wins."""
        for interceptor in self.interceptors:
            handled, result = interceptor.try_fetch(description)
            if handled:
                return True, result
        return False, None


#: The default registry, used when a model does not name one explicitly —
#: mirroring Django's single global app registry.
default_registry = Registry("default")
