"""QuerySets: lazily evaluated, chainable ORM queries.

A QuerySet accumulates filters/ordering/slicing and compiles them into a
storage-engine :class:`SelectQuery` (or :class:`CountQuery`) when iterated.
Before hitting the database it offers a normalized :class:`QueryDescription`
to the registry's interceptors — this is the hook CacheGenie uses to satisfy
Feature/Link/Count/Top-K queries from memcached transparently (§3.1).

A QuerySet whose filters carry :class:`~repro.orm.template.Param`
placeholders (or that traverses relationships via :meth:`QuerySet.through`)
is a *template*: it cannot be executed, but it can be handed to
``CacheGenie.cacheable()``, which normalizes it into a
:class:`~repro.orm.template.QueryTemplate` and infers the cache class from
its shape.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import DoesNotExist, FieldError, MultipleObjectsReturned, TemplateError
from ..storage.predicates import predicate_from_filters
from ..storage.query import CountQuery, OrderBy, SelectQuery
from .fields import ForeignKey, ManyToManyField
from .template import (ChainStep, Param, QueryTemplate, coerce_chain_step,
                       resolve_chain_models)

_FILTER_SUFFIXES = ("exact", "lt", "lte", "gt", "gte", "ne", "in", "isnull")


@dataclass
class QueryDescription:
    """A normalized, interceptable description of a simple ORM query.

    Only queries whose filters are pure column equalities are offered for
    interception; anything more complex goes straight to the database (the
    paper: CacheGenie "does not require that all queries be mediated by the
    caching layer").
    """

    model: type
    kind: str                                   # "select" or "count"
    filters: Dict[str, Any] = dataclass_field(default_factory=dict)
    order_by: List[Tuple[str, bool]] = dataclass_field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    @property
    def table(self) -> str:
        return self.model._meta.db_table


class QuerySet:
    """A chainable, lazily evaluated query over one model."""

    def __init__(self, model: type) -> None:
        self.model = model
        self._filters: Dict[str, Any] = {}
        self._excludes: List[Dict[str, Any]] = []
        self._order_by: List[Tuple[str, bool]] = []
        self._limit: Optional[int] = None
        self._offset: int = 0
        self._result_cache: Optional[List[Any]] = None
        self._values_mode: Optional[List[str]] = None
        #: When True, skip interceptors and read straight from the database.
        self._bypass_cache = False
        #: Relationship hops added by through(); makes this a template.
        self._through_steps: List[ChainStep] = []

    # -- chaining helpers ------------------------------------------------------

    def _clone(self) -> "QuerySet":
        clone = QuerySet(self.model)
        clone._filters = dict(self._filters)
        clone._excludes = [dict(e) for e in self._excludes]
        clone._order_by = list(self._order_by)
        clone._limit = self._limit
        clone._offset = self._offset
        clone._values_mode = list(self._values_mode) if self._values_mode else None
        clone._bypass_cache = self._bypass_cache
        clone._through_steps = list(self._through_steps)
        return clone

    def filter(self, **kwargs: Any) -> "QuerySet":
        """Add equality/lookup filters (Django-style ``field__lookup=value``)."""
        if self._through_steps:
            raise TemplateError(
                "filter() must come before through(); chained models cannot "
                "be filtered in a cacheable template")
        clone = self._clone()
        clone._filters.update(self._normalize_filters(kwargs))
        return clone

    def exclude(self, **kwargs: Any) -> "QuerySet":
        """Exclude rows matching all the given filters."""
        if self._through_steps:
            raise TemplateError("exclude() cannot follow through()")
        clone = self._clone()
        clone._excludes.append(self._normalize_filters(kwargs))
        return clone

    def order_by(self, *names: str) -> "QuerySet":
        """Order by one or more fields; prefix with ``-`` for descending.

        After :meth:`through`, field names are resolved against the final
        model of the relationship chain (the rows a LinkQuery caches).
        """
        clone = self._clone()
        clone._order_by = []
        target = self._chain_target_model()
        for name in names:
            descending = name.startswith("-")
            raw = name[1:] if descending else name
            column = target._meta.column_for(raw)
            clone._order_by.append((column, descending))
        return clone

    def through(self, *steps: Union[str, Tuple[Any, ...], ChainStep]) -> "QuerySet":
        """Traverse relationships, making this queryset a LinkQuery template.

        Each step is a forward ForeignKey field name (``"to_user"``), a
        :class:`~repro.orm.template.ChainStep`, or a tuple
        (``("reverse", "BookmarkInstance", "user")``).  The resulting
        template caches rows of the final model in the chain; it cannot be
        executed directly — hand it to ``cacheable()``.
        """
        clone = self._clone()
        clone._through_steps.extend(coerce_chain_step(step) for step in steps)
        # Resolve eagerly so a typo in a field/model name fails right here.
        resolve_chain_models(self.model, tuple(clone._through_steps))
        return clone

    def _chain_target_model(self) -> type:
        """The model whose rows this queryset yields (chain-aware)."""
        if not self._through_steps:
            return self.model
        return resolve_chain_models(self.model, tuple(self._through_steps))[-1]

    def all(self) -> "QuerySet":
        return self._clone()

    def using_database(self) -> "QuerySet":
        """Return a clone that bypasses cache interception (fresh DB read)."""
        clone = self._clone()
        clone._bypass_cache = True
        return clone

    def values(self, *fields: str) -> "QuerySet":
        """Return dictionaries instead of model instances."""
        clone = self._clone()
        columns = [self.model._meta.column_for(f) for f in fields] if fields else None
        clone._values_mode = columns or [f.column for f in self.model._meta.concrete_fields()]
        return clone

    def __getitem__(self, item):
        if isinstance(item, slice):
            clone = self._clone()
            start = item.start or 0
            clone._offset = self._offset + start
            if item.stop is not None:
                clone._limit = item.stop - start
            return clone
        results = self._fetch_all()
        return results[item]

    # -- filter normalization --------------------------------------------------

    def _normalize_filters(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve field names to storage columns, keeping lookup suffixes."""
        normalized: Dict[str, Any] = {}
        meta = self.model._meta
        for key, value in kwargs.items():
            name, sep, suffix = key.partition("__")
            if suffix and suffix not in _FILTER_SUFFIXES:
                # Treat unknown suffix as part of a related lookup we don't support.
                raise FieldError(f"unsupported lookup {key!r}")
            if meta.has_field(name):
                field_obj = meta.get_field(name)
                if isinstance(field_obj, ManyToManyField):
                    raise FieldError(f"cannot filter on ManyToManyField {name!r}")
                column = field_obj.column
                if isinstance(field_obj, ForeignKey):
                    value = field_obj.get_prep_value(value) if not suffix or suffix == "exact" else value
            else:
                column = meta.column_for(name)
            normalized[column + (sep + suffix if suffix else "")] = value
        return normalized

    def _equality_only_filters(self) -> Optional[Dict[str, Any]]:
        """Return {column: value} if all filters are equalities, else None."""
        out: Dict[str, Any] = {}
        for key, value in self._filters.items():
            column, _, suffix = key.partition("__")
            if suffix and suffix != "exact":
                return None
            out[column] = value
        return out

    # -- template detection -----------------------------------------------------

    def _has_params(self) -> bool:
        if any(isinstance(v, Param) for v in self._filters.values()):
            return True
        return any(isinstance(v, Param)
                   for excl in self._excludes for v in excl.values())

    @property
    def is_template(self) -> bool:
        """True when this queryset declares a shape instead of fetching rows."""
        return self._has_params() or bool(self._through_steps)

    def _require_executable(self, operation: str) -> None:
        if self.is_template:
            raise TemplateError(
                f"cannot {operation} a template queryset (it has Param "
                f"placeholders or through() steps); pass it to "
                f"CacheGenie.cacheable() instead")

    # -- execution -------------------------------------------------------------

    @property
    def _registry(self):
        return self.model._meta.registry

    def _describe(self, kind: str) -> Optional[QueryDescription]:
        if self._excludes or self._values_mode or self.is_template:
            return None
        equalities = self._equality_only_filters()
        if equalities is None:
            return None
        return QueryDescription(
            model=self.model,
            kind=kind,
            filters=equalities,
            order_by=list(self._order_by),
            limit=self._limit,
            offset=self._offset,
        )

    def _compile_select(self) -> SelectQuery:
        query = SelectQuery(
            table=self.model._meta.db_table,
            predicate=predicate_from_filters(self._filters),
            order_by=[OrderBy(column=c, descending=d) for c, d in self._order_by],
            limit=self._limit,
            offset=self._offset,
        )
        return query

    def _apply_excludes(self, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if not self._excludes:
            return rows
        predicates = [predicate_from_filters(excl) for excl in self._excludes]
        return [row for row in rows if not any(p.matches(row) for p in predicates)]

    def _fetch_all(self) -> List[Any]:
        if self._result_cache is not None:
            return self._result_cache
        self._require_executable("execute")

        if not self._bypass_cache:
            description = self._describe("select")
            if description is not None:
                handled, rows = self._registry.intercept(description)
                if handled:
                    self._result_cache = self._rows_to_results(rows)
                    return self._result_cache

        rows = self._registry.db.select(self._compile_select())
        rows = self._apply_excludes(rows)
        self._result_cache = self._rows_to_results(rows)
        return self._result_cache

    def _rows_to_results(self, rows: List[Dict[str, Any]]) -> List[Any]:
        if self._values_mode is not None:
            return [{col: row.get(col) for col in self._values_mode} for row in rows]
        return [self.model._from_db(row) for row in rows]

    # -- public terminal operations ---------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self._fetch_all())

    def __len__(self) -> int:
        return len(self._fetch_all())

    def __bool__(self) -> bool:
        return bool(self._fetch_all())

    def get(self, **kwargs: Any) -> Any:
        """Return exactly one matching instance, or raise."""
        qs = self.filter(**kwargs) if kwargs else self._clone()
        results = qs._fetch_all()
        if not results:
            # Models carry their own DoesNotExist subclass, like Django.
            exc_class = getattr(self.model, "DoesNotExist", DoesNotExist)
            raise exc_class(
                f"{self.model.__name__} matching {kwargs!r} does not exist"
            )
        if len(results) > 1:
            raise MultipleObjectsReturned(
                f"get() returned {len(results)} {self.model.__name__} rows"
            )
        return results[0]

    def first(self) -> Optional[Any]:
        results = self._clone()[:1]._fetch_all()
        return results[0] if results else None

    def exists(self) -> bool:
        return bool(self._clone()[:1]._fetch_all())

    def count(self) -> Union[int, QueryTemplate]:
        """COUNT(*) honoring filters; interceptable by CountQuery cache class.

        On a template queryset (one with ``Param`` placeholders) this is a
        declaration terminal: it returns a count-shaped
        :class:`~repro.orm.template.QueryTemplate` for ``cacheable()``
        instead of executing anything.
        """
        if self.is_template:
            return QueryTemplate.from_queryset(self, kind="count")
        if not self._bypass_cache:
            description = self._describe("count")
            if description is not None:
                handled, value = self._registry.intercept(description)
                if handled:
                    return int(value)
        if self._excludes:
            return len(self._fetch_all())
        query = CountQuery(
            table=self.model._meta.db_table,
            predicate=predicate_from_filters(self._filters),
        )
        return self._registry.db.count(query)

    # -- bulk writes -------------------------------------------------------------

    def update(self, **kwargs: Any) -> int:
        """UPDATE matching rows directly in the database (fires triggers)."""
        self._require_executable("update through")
        changes: Dict[str, Any] = {}
        meta = self.model._meta
        for key, value in kwargs.items():
            field_obj = meta.get_field(key) if meta.has_field(key) else None
            if field_obj is not None and isinstance(field_obj, ForeignKey):
                value = field_obj.get_prep_value(value)
                changes[field_obj.column] = value
            else:
                changes[meta.column_for(key)] = value
        rows = self._registry.db.update(
            meta.db_table, changes,
            predicate=predicate_from_filters(self._filters),
        )
        return len(rows)

    def delete(self) -> int:
        """DELETE matching rows directly in the database (fires triggers)."""
        self._require_executable("delete through")
        meta = self.model._meta
        rows = self._registry.db.delete(
            meta.db_table,
            predicate=predicate_from_filters(self._filters),
        )
        return len(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QuerySet {self.model.__name__} filters={self._filters!r}>"
