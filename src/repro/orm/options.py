"""Per-model metadata (the ``_meta`` object).

Collects a model's fields, knows the backing table name, and can emit the
storage-engine schemas for the model table and any many-to-many through
tables — the equivalent of Django's ``Options`` + ``syncdb`` DDL generation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ..errors import FieldError, ModelError
from ..storage.schema import ColumnDef, IndexDef, TableSchema
from .fields import AutoField, Field, ForeignKey, ManyToManyField

if TYPE_CHECKING:  # pragma: no cover
    from .registry import Registry


class Options:
    """Metadata container attached to every model class as ``_meta``."""

    def __init__(self, model: type, meta: Optional[type], registry) -> None:
        self.model = model
        self.registry = registry
        self.db_table: str = getattr(meta, "db_table", None) or model.__name__.lower()
        #: Extra (non-unique) index column lists declared in ``class Meta``.
        self.indexes: List[List[str]] = [list(cols) for cols in getattr(meta, "indexes", [])]
        self.ordering: List[str] = list(getattr(meta, "ordering", []))
        self.fields: List[Field] = []
        self.fields_by_name: Dict[str, Field] = {}
        self.m2m_fields: List[ManyToManyField] = []
        self.pk: Optional[Field] = None

    # -- field management -----------------------------------------------------

    def add_field(self, field: Field) -> None:
        if field.name in self.fields_by_name:
            raise ModelError(
                f"duplicate field {field.name!r} on model {self.model.__name__}"
            )
        self.fields_by_name[field.name] = field
        if isinstance(field, ManyToManyField):
            self.m2m_fields.append(field)
            return
        self.fields.append(field)
        if field.primary_key:
            if self.pk is not None:
                raise ModelError(
                    f"model {self.model.__name__} declares multiple primary keys"
                )
            self.pk = field

    def concrete_fields(self) -> List[Field]:
        """Fields that map to a column on the model's own table."""
        return list(self.fields)

    def get_field(self, name: str) -> Field:
        try:
            return self.fields_by_name[name]
        except KeyError:
            raise FieldError(
                f"model {self.model.__name__} has no field {name!r}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self.fields_by_name

    @property
    def pk_column(self) -> str:
        assert self.pk is not None
        return self.pk.column

    def column_for(self, name: str) -> str:
        """Resolve a field name (or raw attname) to its storage column."""
        if name in self.fields_by_name:
            field = self.fields_by_name[name]
            if isinstance(field, ManyToManyField):
                raise FieldError(
                    f"cannot filter directly on ManyToManyField {name!r}"
                )
            return field.column
        # Allow raw attnames like "user_id" to pass through.
        for field in self.fields:
            if field.attname == name or field.column == name:
                return field.column
        raise FieldError(f"model {self.model.__name__} has no field {name!r}")

    # -- schema generation ----------------------------------------------------

    def build_schema(self) -> TableSchema:
        """Build the storage schema for this model's table."""
        columns: List[ColumnDef] = []
        indexes: List[IndexDef] = []
        for field in self.fields:
            columns.append(
                ColumnDef(
                    name=field.column,
                    dtype=field.data_type,
                    nullable=field.null or field.primary_key,
                    default=field.default,
                )
            )
            if field.primary_key:
                continue
            if field.unique:
                indexes.append(IndexDef(
                    name=f"{self.db_table}_{field.column}_uniq",
                    columns=(field.column,), unique=True))
            elif field.db_index or isinstance(field, ForeignKey):
                indexes.append(IndexDef(
                    name=f"{self.db_table}_{field.column}_idx",
                    columns=(field.column,)))
        for i, cols in enumerate(self.indexes):
            resolved = tuple(self.column_for(c) for c in cols)
            indexes.append(IndexDef(
                name=f"{self.db_table}_meta{i}_idx", columns=resolved))
        return TableSchema(
            name=self.db_table,
            columns=columns,
            primary_key=self.pk_column,
            indexes=indexes,
        )

    def build_m2m_schemas(self, registry: "Registry") -> List[TableSchema]:
        """Build schemas for auto-created many-to-many through tables."""
        schemas: List[TableSchema] = []
        for m2m in self.m2m_fields:
            if m2m.through:
                # An explicit through model owns its own table.
                continue
            target = m2m.resolve_target(registry)
            source_col = f"{self.model.__name__.lower()}_id"
            target_col = f"{target.__name__.lower()}_id"
            if source_col == target_col:
                target_col = f"to_{target_col}"
            table_name = m2m.through_table_name()
            schemas.append(TableSchema(
                name=table_name,
                columns=[
                    ColumnDef("id", "integer", nullable=True),
                    ColumnDef(source_col, "integer", nullable=False),
                    ColumnDef(target_col, "integer", nullable=False),
                ],
                primary_key="id",
                indexes=[
                    IndexDef(f"{table_name}_{source_col}_idx", (source_col,)),
                    IndexDef(f"{table_name}_{target_col}_idx", (target_col,)),
                ],
            ))
        return schemas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Options for {self.model.__name__} (table {self.db_table!r})>"
