"""Query templates: the normalized shape shared by declaration and interception.

The queryset-native ``cacheable()`` API lets programmers declare cached
objects from the ORM queries they already write::

    genie.cacheable(Profile.objects.filter(user_id=Param("user_id")))

A :class:`Param` marks the columns whose values vary per cache entry (the
paper's ``where_fields``); the rest of the queryset — ordering, slicing,
``.count()``, relationship traversals via ``QuerySet.through()`` — determines
the *shape* of the query, from which the cache class is inferred:

===========================================  ==============
queryset shape                               cache class
===========================================  ==============
equality filter only                         FeatureQuery
``.count()`` terminal                        CountQuery
``.order_by(field)[:k]``                     TopKQuery
``.through(...)`` relationship chain         LinkQuery
===========================================  ==============

:class:`QueryTemplate` is the single normalization layer: the declaration
path builds one from the queryset, and transparent interception matches
incoming :class:`~repro.orm.queryset.QueryDescription` objects against the
very same object (``QueryTemplate.match``), so a declaration and the
interceptor can never disagree about which queries a cached object serves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from ..errors import CacheClassError, TemplateError

if TYPE_CHECKING:  # pragma: no cover
    from .queryset import QueryDescription, QuerySet


class Param:
    """Placeholder for a per-entry parameter in a cacheable queryset template.

    The optional ``name`` is purely descriptive (error messages, repr); the
    cache key is always derived from the storage column the placeholder is
    bound to in ``filter()``.
    """

    __slots__ = ("name",)

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Param({self.name!r})" if self.name else "Param()"


@dataclass(frozen=True)
class ChainStep:
    """One relationship hop in a LinkQuery chain.

    * ``forward`` — the current model has a ForeignKey named ``field`` whose
      target is the next model (``current.field_id == next.pk``).
    * ``reverse`` — the next model (``model_name``) has a ForeignKey named
      ``field`` pointing back at the current model
      (``next.field_id == current.pk``).
    """

    direction: str
    field: str
    model_name: Optional[str] = None

    @classmethod
    def forward(cls, field: str) -> "ChainStep":
        return cls(direction="forward", field=field)

    @classmethod
    def reverse(cls, model_name: str, field: str) -> "ChainStep":
        return cls(direction="reverse", field=field, model_name=model_name)

    def __post_init__(self) -> None:
        if self.direction not in ("forward", "reverse"):
            raise CacheClassError(
                f"invalid chain step direction {self.direction!r}"
            )
        if self.direction == "reverse" and not self.model_name:
            raise CacheClassError("reverse chain steps must name the next model")


def coerce_chain_step(step: Any) -> ChainStep:
    """Coerce a step spec (ChainStep, field name, or tuple) to a ChainStep."""
    if isinstance(step, ChainStep):
        return step
    if isinstance(step, str):
        return ChainStep.forward(step)
    if isinstance(step, (tuple, list)):
        if len(step) == 2 and step[0] == "forward":
            return ChainStep.forward(step[1])
        if len(step) == 3 and step[0] == "reverse":
            return ChainStep.reverse(step[1], step[2])
    raise CacheClassError(f"invalid chain step {step!r}")


def resolve_chain_models(model: type, chain: Tuple[ChainStep, ...]) -> Tuple[type, ...]:
    """Resolve the model classes along a chain, index 0 = the base model.

    Raises :class:`~repro.errors.FieldError` / :class:`~repro.errors.ModelError`
    at declaration time if a step names a missing field or model — the typo
    the stringly-typed API would only surface when a trigger misfired.
    """
    models = [model]
    registry = model._meta.registry
    for step in chain:
        current = models[-1]
        if step.direction == "forward":
            field = current._meta.get_field(step.field)
            target = field.resolve_target(registry)
        else:
            target = registry.get_model(step.model_name)
            # Validate that the FK actually exists on the next model.
            target._meta.get_field(step.field)
        models.append(target)
    return tuple(models)


@dataclass(frozen=True)
class QueryTemplate:
    """The normalized shape of a cacheable query.

    ``param_fields`` are the storage columns bound to :class:`Param`
    placeholders (declaration order preserved); ``order_by`` / ``limit`` /
    ``chain`` capture the rest of the shape.  Instances are immutable and
    hashable, so shapes can be compared and used for duplicate detection.
    """

    model: type
    kind: str                                        # "select" or "count"
    param_fields: Tuple[str, ...]
    order_by: Tuple[Tuple[str, bool], ...] = ()
    limit: Optional[int] = None
    chain: Tuple[ChainStep, ...] = ()
    #: Constant equality filters ((column, value) pairs, sorted) narrowing
    #: the cached rows alongside the Param placeholders — e.g.
    #: ``filter(status="PENDING", user_id=Param("u"))``.
    const_filters: Tuple[Tuple[str, Any], ...] = ()

    @property
    def table(self) -> str:
        return self.model._meta.db_table

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_queryset(cls, queryset: "QuerySet", kind: str = "select") -> "QueryTemplate":
        """Normalize a Param-carrying queryset into a template.

        Validates the shape eagerly so declaration mistakes fail at the
        ``cacheable()`` call, not when the interceptor silently never matches.
        """
        if queryset._excludes:
            raise TemplateError(
                "cacheable templates cannot use exclude(); only equality "
                "filters on Param placeholders are supported")
        if queryset._values_mode is not None:
            raise TemplateError("cacheable templates cannot use values()")
        if queryset._offset:
            raise TemplateError(
                "cacheable templates cannot be sliced with an offset; "
                "use [:k] to declare a Top-K query")

        params: Dict[str, Param] = {}
        consts: Dict[str, Any] = {}
        for key, value in queryset._filters.items():
            column, _, suffix = key.partition("__")
            if suffix and suffix != "exact":
                raise TemplateError(
                    f"cacheable templates only support equality filters; "
                    f"{key!r} uses the lookup {suffix!r}")
            if isinstance(value, Param):
                params[column] = value
            else:
                # A constant filter: folded into the query shape (and the
                # cache-key fingerprint) rather than varying per entry.
                consts[column] = value
        if not params:
            raise TemplateError(
                "cacheable templates must filter on at least one "
                "Param(...) placeholder")

        chain = tuple(queryset._through_steps)
        if chain and consts:
            raise TemplateError(
                "constant filters are not supported on through() chains; "
                "filter the chain's base rows with Param placeholders only")
        order_by = tuple(queryset._order_by)
        limit = queryset._limit

        if kind == "count":
            if chain:
                raise TemplateError(
                    "count() of a through() chain is not supported; declare "
                    "the chain as a LinkQuery and measure its length instead")
            if order_by or limit is not None:
                raise TemplateError(
                    "count() templates cannot be ordered or sliced")
        elif not chain:
            if limit is not None and not order_by:
                raise TemplateError(
                    "a sliced template needs order_by(...) to define which "
                    "rows are the top K")
            if order_by and limit is None:
                raise TemplateError(
                    "an ordered template without a slice is ambiguous: add "
                    "[:k] to declare a TopKQuery, or drop order_by() to "
                    "declare a FeatureQuery (interception re-sorts on read)")
            if limit is not None and len(order_by) != 1:
                raise TemplateError(
                    "Top-K templates must order by exactly one field")
            if limit is not None and limit < 1:
                raise TemplateError("Top-K templates require k >= 1")
        else:
            if len(order_by) > 1:
                raise TemplateError(
                    "through() chains support at most one order_by field")
            # Validate the chain resolves; raises at declaration time if not.
            resolve_chain_models(queryset.model, chain)

        return cls(
            model=queryset.model,
            kind=kind,
            param_fields=tuple(params),
            order_by=order_by,
            limit=limit,
            chain=chain,
            const_filters=tuple(sorted(consts.items())),
        )

    # -- shape inference -------------------------------------------------------

    def infer_cache_class(self) -> Tuple[str, Dict[str, Any]]:
        """Return ``(cache_class_type, constructor_kwargs)`` for this shape."""
        if self.chain:
            kwargs: Dict[str, Any] = {"chain": list(self.chain)}
            if self.order_by:
                column, descending = self.order_by[0]
                kwargs["order_by"] = column
                kwargs["descending"] = descending
            if self.limit is not None:
                kwargs["limit"] = self.limit
            return "LinkQuery", kwargs
        if self.kind == "count":
            return "CountQuery", {}
        if self.limit is not None:
            column, descending = self.order_by[0]
            return "TopKQuery", {
                "sort_field": column,
                "sort_order": "descending" if descending else "ascending",
                "k": self.limit,
            }
        return "FeatureQuery", {}

    # -- shape identity --------------------------------------------------------

    def shape_fingerprint(self) -> str:
        """Canonical string identifying this query shape (duplicate detection)."""
        parts = [
            self.table,
            self.kind,
            ",".join(sorted(self.param_fields)),
            ";".join(f"{c}:{'desc' if d else 'asc'}" for c, d in self.order_by),
            str(self.limit),
            ";".join(f"{s.direction}:{s.field}:{s.model_name}" for s in self.chain),
            ";".join(f"{c}={v!r}" for c, v in self.const_filters),
        ]
        return "|".join(parts)

    # -- interception matching -------------------------------------------------

    def match(self, description: "QueryDescription") -> Optional[Dict[str, Any]]:
        """Return evaluate() parameters if ``description`` fits this shape.

        This is the single matching predicate used by transparent
        interception; because the declaration built the same template, the
        two can never disagree on which queries the cached object serves.
        Split into :meth:`match_shape` (value-independent checks, safe to
        memoize per description shape) and :meth:`bind` (const-value checks
        plus parameter extraction, run per call).
        """
        if not self.match_shape(description):
            return None
        return self.bind(description)

    def match_shape(self, description: "QueryDescription") -> bool:
        """Value-independent half of :meth:`match`.

        Depends only on the description's *shape* — table, kind, filter-key
        set, ordering, limit, offset — never on filter values, so the
        interceptor's match memo can cache the verdict for every description
        sharing the shape.
        """
        if self.chain:
            # Single-table querysets cannot express joins, so chain-shaped
            # objects are only reachable through explicit evaluate() calls.
            return False
        if description.kind != self.kind:
            return False
        if description.table != self.table:
            return False
        if description.offset:
            return False
        if self.kind == "select":
            if self.limit is not None:
                # Top-K shape: the query must want the same ordering and no
                # more rows than the declared K.
                if description.limit is None or description.limit > self.limit:
                    return False
                if list(description.order_by) != list(self.order_by):
                    return False
            # Feature shape (limit is None): any ordering/limit is acceptable;
            # the cached object re-sorts and trims when presenting results.
        expected = set(self.param_fields) | {c for c, _ in self.const_filters}
        return set(description.filters) == expected

    def bind(self, description: "QueryDescription") -> Optional[Dict[str, Any]]:
        """Value-dependent half of :meth:`match`: const equality, then the
        evaluate() parameter dict.  Only valid after :meth:`match_shape`."""
        filters = description.filters
        for column, value in self.const_filters:
            if filters[column] != value:
                return None
        return {column: filters[column] for column in self.param_fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"{self.model.__name__}", self.kind,
                f"params={list(self.param_fields)!r}"]
        if self.order_by:
            bits.append(f"order_by={list(self.order_by)!r}")
        if self.limit is not None:
            bits.append(f"limit={self.limit}")
        if self.chain:
            bits.append(f"chain={list(self.chain)!r}")
        if self.const_filters:
            bits.append(f"consts={dict(self.const_filters)!r}")
        return f"<QueryTemplate {' '.join(bits)}>"
