"""Model base class and metaclass.

Mirrors the slice of Django's model layer that the paper's workload needs:
declarative fields, an implicit ``id`` primary key, ``objects`` managers,
``save``/``delete``, foreign-key and many-to-many accessors, and reverse
relations.  Writes always go straight to the database — CacheGenie keeps the
cache consistent via database triggers, never via the ORM write path (§3.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import DoesNotExist, ModelError
from .descriptors import (ForeignKeyDescriptor, ManyToManyDescriptor,
                          ReverseForeignKeyDescriptor)
from .fields import (AutoField, DateTimeField, Field, FloatTimestampField,
                     ForeignKey, ManyToManyField)
from .manager import Manager
from .options import Options
from .registry import Registry, default_registry


class ModelBase(type):
    """Metaclass that wires fields, options, managers, and registration."""

    def __new__(mcs, name: str, bases: tuple, attrs: Dict[str, Any]):
        parents = [b for b in bases if isinstance(b, ModelBase)]
        if not parents:
            # The Model base class itself.
            return super().__new__(mcs, name, bases, attrs)

        meta = attrs.pop("Meta", None)
        registry: Registry = getattr(meta, "registry", None) or default_registry

        module = attrs.pop("__module__", None)
        qualname = attrs.pop("__qualname__", None)
        new_attrs = {"__module__": module, "__qualname__": qualname}
        cls = super().__new__(mcs, name, bases, new_attrs)
        cls._meta = Options(cls, meta, registry)

        # Attach fields in declaration order.
        fields = [(key, value) for key, value in attrs.items() if isinstance(value, Field)]
        fields.sort(key=lambda pair: pair[1]._order)
        declared_pk = any(f.primary_key for _, f in fields)
        if not declared_pk:
            auto = AutoField(null=True)
            auto.contribute_to_class(cls, "id")
        for key, field in fields:
            field.contribute_to_class(cls, key)
            if isinstance(field, ForeignKey):
                setattr(cls, key, ForeignKeyDescriptor(field))
            elif isinstance(field, ManyToManyField):
                setattr(cls, key, ManyToManyDescriptor(field))

        # Attach non-field attributes (methods, class attributes, managers).
        manager_found = False
        for key, value in attrs.items():
            if isinstance(value, Field):
                continue
            if isinstance(value, Manager):
                value.contribute_to_class(cls, key)
                manager_found = True
            else:
                setattr(cls, key, value)
        if not manager_found:
            Manager().contribute_to_class(cls, "objects")

        # Per-model DoesNotExist, like Django.
        cls.DoesNotExist = type("DoesNotExist", (DoesNotExist,), {})

        registry.register_model(cls)
        mcs._wire_reverse_relations(cls, registry)
        return cls

    @staticmethod
    def _wire_reverse_relations(cls: type, registry: Registry) -> None:
        """Install reverse descriptors for FKs whose targets are already defined."""
        for field in cls._meta.fields:
            if not isinstance(field, ForeignKey):
                continue
            if isinstance(field.to, str):
                try:
                    target = registry.get_model(field.to)
                except ModelError:
                    continue  # target defined later; wired by its own pass below
            else:
                target = field.to
            accessor = field.related_name or f"{cls.__name__.lower()}_set"
            if not hasattr(target, accessor):
                setattr(target, accessor, ReverseForeignKeyDescriptor(cls, field))
        # Also resolve string FKs from previously registered models that point here.
        for other in registry.models.values():
            if other is cls:
                continue
            for field in other._meta.fields:
                if isinstance(field, ForeignKey) and isinstance(field.to, str) \
                        and field.to.lower() == cls.__name__.lower():
                    accessor = field.related_name or f"{other.__name__.lower()}_set"
                    if not hasattr(cls, accessor):
                        setattr(cls, accessor, ReverseForeignKeyDescriptor(other, field))


class Model(metaclass=ModelBase):
    """Base class for all models."""

    _meta: Options

    def __init__(self, **kwargs: Any) -> None:
        self._state_adding = True
        meta = self._meta
        for field in meta.concrete_fields():
            setattr(self, field.attname, field.get_default())
        for key, value in kwargs.items():
            if meta.has_field(key):
                field = meta.get_field(key)
                if isinstance(field, ManyToManyField):
                    raise ModelError(
                        f"cannot set ManyToManyField {key!r} in the constructor"
                    )
                if isinstance(field, ForeignKey):
                    setattr(self, key, value)  # descriptor handles instance/pk
                else:
                    setattr(self, field.attname, value)
            elif any(f.attname == key for f in meta.concrete_fields()):
                setattr(self, key, value)
            else:
                raise ModelError(
                    f"{self.__class__.__name__} has no field {key!r}"
                )

    # -- identity --------------------------------------------------------------

    @property
    def pk(self) -> Any:
        return getattr(self, self._meta.pk.attname, None)

    @pk.setter
    def pk(self, value: Any) -> None:
        setattr(self, self._meta.pk.attname, value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        return self.__class__ is other.__class__ and self.pk is not None and self.pk == other.pk

    def __hash__(self) -> int:
        if self.pk is None:
            return object.__hash__(self)
        return hash((self.__class__.__name__, self.pk))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} pk={self.pk!r}>"

    # -- persistence -----------------------------------------------------------

    def _column_values(self, *, include_pk: bool) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        clock = self._meta.registry.clock
        for field in self._meta.concrete_fields():
            if field.primary_key and not include_pk:
                continue
            value = getattr(self, field.attname, None)
            if value is None and getattr(field, "auto_now_add", False) and self._state_adding:
                value = clock()
                setattr(self, field.attname, value)
            if isinstance(field, ForeignKey):
                value = field.get_prep_value(value)
            values[field.column] = value
        return values

    def save(self) -> "Model":
        """INSERT the instance if new, otherwise UPDATE its row."""
        db = self._meta.registry.db
        table = self._meta.db_table
        pk_col = self._meta.pk_column
        if self._state_adding or self.pk is None:
            values = self._column_values(include_pk=self.pk is not None)
            stored = db.insert(table, values)
            self.pk = stored[pk_col]
            self._state_adding = False
        else:
            values = self._column_values(include_pk=False)
            db.update(table, values, where={pk_col: self.pk})
        return self

    def delete(self) -> None:
        """DELETE the instance's row."""
        if self.pk is None:
            raise ModelError("cannot delete an unsaved instance")
        db = self._meta.registry.db
        db.delete(self._meta.db_table, where={self._meta.pk_column: self.pk})
        self._state_adding = True

    def refresh_from_db(self) -> "Model":
        """Reload all field values from the database (bypassing the cache)."""
        db = self._meta.registry.db
        row = db.get_by_pk(self._meta.db_table, self.pk)
        if row is None:
            raise self.DoesNotExist(
                f"{self.__class__.__name__} with pk={self.pk!r} no longer exists"
            )
        self._load_row(row)
        return self

    def _load_row(self, row: Dict[str, Any]) -> None:
        for field in self._meta.concrete_fields():
            setattr(self, field.attname, row.get(field.column))
        self._state_adding = False

    @classmethod
    def _from_db(cls, row: Dict[str, Any]) -> "Model":
        """Build an instance from a raw storage row (no validation)."""
        instance = cls.__new__(cls)
        instance._state_adding = False
        instance._load_row(row)
        return instance

    def to_dict(self) -> Dict[str, Any]:
        """Return the instance's column values as a plain dict."""
        return {
            field.column: getattr(self, field.attname, None)
            for field in self._meta.concrete_fields()
        }
