"""Attribute descriptors for relationships.

``ForeignKeyDescriptor`` gives ``bookmark.user`` semantics (lazy load, cached
per instance); ``ReverseForeignKeyDescriptor`` gives ``user.bookmark_set``;
``ManyToManyDescriptor`` gives ``group.members`` with ``add/remove/all/count``
backed by an auto-created through table.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import DoesNotExist
from .fields import ForeignKey, ManyToManyField
from .manager import RelatedManager


class ForeignKeyDescriptor:
    """Instance attribute for the forward side of a ForeignKey."""

    def __init__(self, field: ForeignKey) -> None:
        self.field = field
        self.cache_attr = f"_cache_{field.name}"

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        cached = getattr(instance, self.cache_attr, None)
        if cached is not None:
            return cached
        fk_value = getattr(instance, self.field.attname, None)
        if fk_value is None:
            return None
        target = self.field.resolve_target(instance._meta.registry)
        related = target.objects.get(**{target._meta.pk.name: fk_value})
        setattr(instance, self.cache_attr, related)
        return related

    def __set__(self, instance: Any, value: Any) -> None:
        if value is None:
            setattr(instance, self.field.attname, None)
            setattr(instance, self.cache_attr, None)
            return
        if hasattr(value, "pk"):
            setattr(instance, self.field.attname, value.pk)
            setattr(instance, self.cache_attr, value)
        else:
            setattr(instance, self.field.attname, value)
            setattr(instance, self.cache_attr, None)


class ReverseForeignKeyDescriptor:
    """Class attribute for the reverse side of a ForeignKey (``x_set``)."""

    def __init__(self, source_model: type, field: ForeignKey) -> None:
        self.source_model = source_model
        self.field = field

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        return RelatedManager(
            model=self.source_model,
            fk_column=self.field.attname,
            fk_value=instance.pk,
        )


class ManyToManyManager:
    """Accessor for a many-to-many relation through its join table."""

    def __init__(self, instance: Any, field: ManyToManyField) -> None:
        self.instance = instance
        self.field = field
        self.registry = instance._meta.registry
        self.target = field.resolve_target(self.registry)
        self.through_table = field.through_table_name()
        self.source_column = f"{instance.__class__.__name__.lower()}_id"
        self.target_column = f"{self.target.__name__.lower()}_id"
        if self.source_column == self.target_column:
            self.target_column = f"to_{self.target_column}"

    # -- reads ----------------------------------------------------------------

    def _target_ids(self) -> list:
        rows = self.registry.db.find(
            self.through_table, where={self.source_column: self.instance.pk}
        )
        return [row[self.target_column] for row in rows]

    def all(self) -> list:
        ids = self._target_ids()
        if not ids:
            return []
        return list(self.target.objects.filter(**{f"{self.target._meta.pk.name}__in": ids}))

    def count(self) -> int:
        return len(self._target_ids())

    def exists(self) -> bool:
        return bool(self._target_ids())

    def __iter__(self):
        return iter(self.all())

    # -- writes ---------------------------------------------------------------

    def add(self, *objects: Any) -> None:
        """Link the given target instances (idempotent per pair)."""
        existing = set(self._target_ids())
        for obj in objects:
            pk = getattr(obj, "pk", obj)
            if pk in existing:
                continue
            self.registry.db.insert(self.through_table, {
                self.source_column: self.instance.pk,
                self.target_column: pk,
            })

    def remove(self, *objects: Any) -> None:
        """Unlink the given target instances."""
        for obj in objects:
            pk = getattr(obj, "pk", obj)
            self.registry.db.delete(self.through_table, where={
                self.source_column: self.instance.pk,
                self.target_column: pk,
            })

    def clear(self) -> None:
        self.registry.db.delete(
            self.through_table, where={self.source_column: self.instance.pk}
        )


class ManyToManyDescriptor:
    """Instance attribute exposing a :class:`ManyToManyManager`."""

    def __init__(self, field: ManyToManyField) -> None:
        self.field = field

    def __get__(self, instance: Any, owner: type) -> Any:
        if instance is None:
            return self
        return ManyToManyManager(instance, self.field)
