"""Model managers: the ``Model.objects`` entry point and related managers."""

from __future__ import annotations

from typing import Any, Optional

from .queryset import QuerySet


class Manager:
    """Default per-model manager, exposed as ``Model.objects``."""

    def __init__(self) -> None:
        self.model: Optional[type] = None

    def contribute_to_class(self, model: type, name: str) -> None:
        self.model = model
        setattr(model, name, ManagerDescriptor(self))

    def get_queryset(self) -> QuerySet:
        assert self.model is not None
        return QuerySet(self.model)

    # -- convenience passthroughs ---------------------------------------------

    def all(self) -> QuerySet:
        return self.get_queryset()

    def filter(self, **kwargs: Any) -> QuerySet:
        return self.get_queryset().filter(**kwargs)

    def exclude(self, **kwargs: Any) -> QuerySet:
        return self.get_queryset().exclude(**kwargs)

    def get(self, **kwargs: Any) -> Any:
        return self.get_queryset().get(**kwargs)

    def order_by(self, *names: str) -> QuerySet:
        return self.get_queryset().order_by(*names)

    def values(self, *fields: str) -> QuerySet:
        return self.get_queryset().values(*fields)

    def using_database(self) -> QuerySet:
        """A queryset that bypasses cache interception (fresh database read)."""
        return self.get_queryset().using_database()

    def count(self) -> int:
        return self.get_queryset().count()

    def exists(self) -> bool:
        return self.get_queryset().exists()

    def first(self) -> Any:
        return self.get_queryset().first()

    def create(self, **kwargs: Any) -> Any:
        """Instantiate and immediately save a model instance."""
        assert self.model is not None
        instance = self.model(**kwargs)
        instance.save()
        return instance

    def get_or_create(self, defaults: Optional[dict] = None, **kwargs: Any):
        """Return ``(instance, created)`` for the given lookup."""
        from ..errors import DoesNotExist
        try:
            return self.get(**kwargs), False
        except DoesNotExist:
            params = dict(kwargs)
            params.update(defaults or {})
            return self.create(**params), True

    def bulk_create(self, instances) -> list:
        """Save a list of unsaved instances (one INSERT each)."""
        for instance in instances:
            instance.save()
        return list(instances)


class ManagerDescriptor:
    """Restricts manager access to the class (``Model.objects``), like Django."""

    def __init__(self, manager: Manager) -> None:
        self.manager = manager

    def __get__(self, instance: Any, owner: type) -> Manager:
        if instance is not None:
            raise AttributeError("Manager is not accessible via model instances")
        return self.manager


class RelatedManager(Manager):
    """Manager for the reverse side of a ForeignKey (e.g. ``user.bookmark_set``)."""

    def __init__(self, model: type, fk_column: str, fk_value: Any) -> None:
        super().__init__()
        self.model = model
        self.fk_column = fk_column
        self.fk_value = fk_value

    def get_queryset(self) -> QuerySet:
        return QuerySet(self.model).filter(**{self.fk_column: self.fk_value})

    def create(self, **kwargs: Any) -> Any:
        kwargs.setdefault(self.fk_column, self.fk_value)
        return super().create(**kwargs)
