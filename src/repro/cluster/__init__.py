"""Cluster dynamics: node lifecycle, fault injection, and the gutter pool.

The paper's evaluation runs a *static* memcached fleet; real deployments do
not get that luxury — nodes join, drain, die, and come back cold.  This
package makes the simulated fleet dynamic on the virtual clock:

* :class:`ClusterController` owns the live hash ring shared by every cache
  client and drives node lifecycle (``join`` / ``drain`` / ``kill`` /
  ``revive``), tracking remapped key ranges and post-revival invalidation
  cost.
* :class:`FaultSchedule` / :class:`FaultInjector` turn a declarative list of
  timed fault events into deterministic mid-replay membership changes.
* :class:`GutterPool` is the small fallback server set clients route to when
  a key's primary is dead (short-TTL, no CAS, no leases) — after the gutter
  machines of Nishtala et al., *Scaling Memcache at Facebook*.
"""

from .controller import ClusterController, ClusterEvent
from .faults import (FAULT_ACTIONS, FaultEvent, FaultInjector, FaultSchedule)
from .gutter import GutterPool

__all__ = [
    "ClusterController",
    "ClusterEvent",
    "FAULT_ACTIONS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "GutterPool",
]
