"""The gutter pool: a small fallback fleet for keys whose primary is dead.

Modeled after the *gutter* machines of Nishtala et al., *Scaling Memcache at
Facebook*: when a client's request to a primary node fails, it retries
against a small dedicated pool whose entries carry a short TTL.  The short
TTL is the whole consistency story — gutter entries are **not** invalidated
by the trigger pipeline's delete traffic for live nodes (the primary is
dead; its delete batches fail fast), so a bounded lifetime is what keeps a
dead node's window of staleness bounded.  Invalidation traffic that *does*
target a dead primary is forwarded here by the client, so an explicitly
doomed value never outlives its write even inside the TTL window.

The pool deliberately speaks a reduced protocol: get/set/add/delete and
their batched forms.  No CAS (tokens from a vanished primary are
meaningless) and no leases (stale retention on a fallback would stack two
staleness bounds).  Clients do all round-trip cost accounting; the pool's
own counters only split gutter traffic into hits/misses/sets/deletes for
the cluster ablation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..errors import CacheServerError
from ..memcache.hashring import HashRing
from ..memcache.server import CacheServer

#: Default gutter entry lifetime.  Short by design: it is the bound on how
#: stale a value served for a dead primary's key can get.
DEFAULT_GUTTER_TTL = 2.0


class GutterPool:
    """A small set of fallback cache servers with a short per-entry TTL."""

    def __init__(self, servers: Sequence[CacheServer],
                 ttl_seconds: float = DEFAULT_GUTTER_TTL) -> None:
        if not servers:
            raise CacheServerError("gutter pool requires at least one server")
        if ttl_seconds <= 0:
            raise CacheServerError("gutter TTL must be positive")
        self._servers: Dict[str, CacheServer] = {s.name: s for s in servers}
        if len(self._servers) != len(servers):
            raise CacheServerError("gutter server names must be unique")
        self.ttl_seconds = float(ttl_seconds)
        #: The pool has its own ring: gutter membership is independent of the
        #: primary fleet's (a primary dying must not remap gutter keys).
        self.ring = HashRing(list(self._servers))
        self.hits = 0
        self.misses = 0
        self.sets = 0
        self.deletes = 0

    # -- routing ---------------------------------------------------------------

    @property
    def servers(self) -> List[CacheServer]:
        return list(self._servers.values())

    def _server_for(self, key: str) -> CacheServer:
        return self._servers[self.ring.server_for(key)]

    # -- reduced protocol ------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        value = self._server_for(key).get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def get_multi(self, keys: Sequence[str]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    def set(self, key: str, value: Any) -> bool:
        self.sets += 1
        return self._server_for(key).set(key, value, self.ttl_seconds)

    def set_multi(self, mapping: Dict[str, Any]) -> List[str]:
        failed: List[str] = []
        for key, value in mapping.items():
            if not self.set(key, value):  # pragma: no cover - set always True
                failed.append(key)
        return failed

    def add(self, key: str, value: Any) -> bool:
        self.sets += 1
        return self._server_for(key).add(key, value, self.ttl_seconds)

    def delete(self, key: str) -> bool:
        self.deletes += 1
        return self._server_for(key).delete(key)

    def delete_multi(self, keys: Sequence[str]) -> List[str]:
        return [key for key in keys if self.delete(key)]

    def flush_all(self) -> None:
        for server in self._servers.values():
            server.flush_all()

    # -- introspection ---------------------------------------------------------

    def item_count(self) -> int:
        return sum(s.item_count for s in self._servers.values())

    def counters(self) -> Dict[str, int]:
        """The pool's traffic split (clients account round trips)."""
        return {
            "gutter_hits": self.hits,
            "gutter_misses": self.misses,
            "gutter_sets": self.sets,
            "gutter_deletes": self.deletes,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<GutterPool {sorted(self._servers)} ttl={self.ttl_seconds}s "
                f"hits={self.hits} misses={self.misses}>")
