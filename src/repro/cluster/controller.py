"""The cluster controller: one live hash ring, four lifecycle verbs.

The controller owns the hash ring that every cache client in the deployment
routes on, so a membership change made here is immediately visible to the
application clients *and* the trigger-side clients — there is one logical
cache, per the paper, and therefore one view of its membership.

Lifecycle verbs:

* :meth:`join` — a new, cold node enters the ring.  Consistent hashing
  remaps only ``~1/n`` of the key space, but every remapped key now routes
  to an empty node: the controller measures that warm-up debt by diffing
  key ownership against a :class:`~repro.memcache.hashring.RingSnapshot`
  over the keys currently cached.
* :meth:`drain` — planned removal: the node leaves the ring (keys remap to
  survivors) but stays alive, so nothing fails — only remapped keys go cold.
* :meth:`kill` — a crash: the node stays **on** the ring (clients cannot
  re-route what they cannot detect as a membership change; they fail fast
  per request and fall back to the gutter pool).  Refresh-queue claims held
  by workers recomputing keys of the dead node are dropped so other readers
  can re-claim within one refresh cycle.
* :meth:`revive` — the node returns *empty* (a real restart loses RAM):
  the controller counts the items flushed as the post-revival invalidation
  cost — every one is a key that must be recomputed even though the node
  is "back".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import CacheServerError
from ..memcache.client import CacheClient
from ..memcache.hashring import HashRing
from ..memcache.server import CacheServer
from .gutter import GutterPool


@dataclass
class ClusterEvent:
    """One lifecycle action applied to the fleet, with its measured effects."""

    at: float
    action: str
    node: str
    details: Dict[str, float] = field(default_factory=dict)


class ClusterController:
    """Drive node lifecycle over a shared ring for a set of cache clients."""

    def __init__(
        self,
        clients: Sequence[CacheClient],
        servers: Sequence[CacheServer],
        clock: Callable[[], float],
        gutter: Optional[GutterPool] = None,
        genie: Optional[Any] = None,
    ) -> None:
        if not clients:
            raise CacheServerError("cluster controller requires at least one client")
        if not servers:
            raise CacheServerError("cluster controller requires at least one server")
        self._clients = list(clients)
        self._servers: Dict[str, CacheServer] = {s.name: s for s in servers}
        if len(self._servers) != len(servers):
            raise CacheServerError("cache server names must be unique")
        self.clock = clock
        self.gutter = gutter
        #: The CacheGenie instance (when wired): kill() uses its refresh
        #: queue to drop recompute claims orphaned by the dead node.
        self.genie = genie
        #: THE ring.  Every client routes on this same object, so one
        #: membership change here re-routes the whole deployment at once.
        self.ring = HashRing(list(self._servers))
        for client in self._clients:
            client.ring = self.ring
            client._servers = self._servers
            client.gutter = gutter
        self.events: List[ClusterEvent] = []
        # Cumulative fleet-level costs of dynamics.
        self.keys_remapped = 0
        self.orphaned_claims_dropped = 0
        self.post_revival_invalidations = 0

    # -- introspection ---------------------------------------------------------

    @property
    def servers(self) -> List[CacheServer]:
        return list(self._servers.values())

    def server(self, name: str) -> CacheServer:
        try:
            return self._servers[name]
        except KeyError:
            raise CacheServerError(f"unknown cache node {name!r}")

    def alive_nodes(self) -> List[str]:
        return [name for name, s in self._servers.items() if s.alive]

    def _cached_keys(self) -> List[str]:
        """Keys currently held by live ring members (the remap population)."""
        keys: List[str] = []
        for name in self.ring.servers:
            server = self._servers.get(name)
            if server is not None and server.alive:
                keys.extend(server.store.keys())
        return keys

    def _log(self, action: str, node: str, **details: float) -> ClusterEvent:
        event = ClusterEvent(at=self.clock(), action=action, node=node,
                             details=dict(details))
        self.events.append(event)
        return event

    # -- lifecycle -------------------------------------------------------------

    def join(self, server: CacheServer) -> ClusterEvent:
        """Add a cold node to the fleet and the ring.

        Measures the warm-up debt: of the keys currently cached, how many
        now route to the (empty) newcomer and will therefore miss until
        recomputed.
        """
        if server.name in self._servers:
            raise CacheServerError(f"cache node {server.name!r} already in the fleet")
        before = self.ring.snapshot()
        self._servers[server.name] = server
        self.ring.add_server(server.name)
        remapped = sum(1 for key in self._cached_keys()
                       if self.ring.server_for(key) != before.server_for(key))
        self.keys_remapped += remapped
        return self._log("join", server.name, keys_remapped=remapped)

    def drain(self, name: str) -> ClusterEvent:
        """Planned removal: take the node off the ring, leaving it alive.

        Keys remap to the survivors and go cold there; nothing fails fast
        because no client routes to the drained node any more.  The node
        stays registered (and alive) so a later :meth:`join` of the same
        server object can bring it back.
        """
        server = self.server(name)
        if name not in self.ring.servers:
            raise CacheServerError(f"cache node {name!r} is not on the ring")
        if len(self.ring.servers) == 1:
            raise CacheServerError("cannot drain the last ring member")
        remapped = len(server.store.keys())
        self.ring.remove_server(name)
        del self._servers[name]
        self.keys_remapped += remapped
        return self._log("drain", name, keys_remapped=remapped)

    def kill(self, name: str) -> ClusterEvent:
        """Crash a node: it stays on the ring but refuses every operation.

        Clients fail fast (``cache_node_down``) and fall back to the gutter
        pool when one is attached.  Refresh claims held for keys owned by
        the dead node are dropped so surviving workers can re-claim them —
        a dead lease holder must not block everyone else.
        """
        server = self.server(name)
        if not server.alive:
            raise CacheServerError(f"cache node {name!r} is already down")
        server.alive = False
        orphaned = 0
        if self.genie is not None:
            orphaned = self.genie.refresh_queue.drop_orphaned(
                lambda key: self.ring.server_for(key) == name)
            self.orphaned_claims_dropped += orphaned
        return self._log("kill", name, orphaned_claims_dropped=orphaned)

    def revive(self, name: str) -> ClusterEvent:
        """Bring a dead node back — empty, as a real restart would.

        The items it held at death are flushed and counted as the
        post-revival invalidation cost: each one must be recomputed even
        though its node is nominally back.
        """
        server = self.server(name)
        if server.alive:
            raise CacheServerError(f"cache node {name!r} is not down")
        invalidated = server.item_count
        server.flush_all()
        server.alive = True
        self.post_revival_invalidations += invalidated
        return self._log("revive", name, post_revival_invalidations=invalidated)

    # -- reporting -------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        out = {
            "keys_remapped": self.keys_remapped,
            "orphaned_claims_dropped": self.orphaned_claims_dropped,
            "post_revival_invalidations": self.post_revival_invalidations,
        }
        if self.gutter is not None:
            out.update(self.gutter.counters())
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ClusterController nodes={sorted(self._servers)} "
                f"alive={self.alive_nodes()} events={len(self.events)}>")
