"""Declarative fault schedules, fired deterministically on the virtual clock.

A fault scenario is data, not code: a list of :class:`FaultEvent` rows
(``at=12.5, action="kill", node="cache1"``) validated up front by
:class:`FaultSchedule`.  :class:`FaultInjector` loads the schedule into a
private :class:`~repro.sim.events.EventEngine` and the replay engine calls
:meth:`FaultInjector.fire_due` at every clock advance — so faults land at
exactly the same simulated instant in every run (serial or concurrent),
which is what keeps the cluster ablation reproducible under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import CacheServerError
from ..memcache.server import CacheServer
from ..sim.events import EventEngine
from .controller import ClusterController, ClusterEvent

#: The lifecycle verbs a schedule may invoke, mapping 1:1 onto
#: :class:`ClusterController` methods.
FAULT_ACTIONS = ("kill", "revive", "drain", "join")


@dataclass(frozen=True)
class FaultEvent:
    """One timed lifecycle action.

    ``kill`` / ``revive`` / ``drain`` name an existing node via ``node``;
    ``join`` carries the new :class:`CacheServer` instance via ``server``.
    """

    at: float
    action: str
    node: Optional[str] = None
    server: Optional[CacheServer] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.at) or self.at < 0:
            raise CacheServerError(f"fault time must be finite and >= 0, got {self.at!r}")
        if self.action not in FAULT_ACTIONS:
            raise CacheServerError(
                f"unknown fault action {self.action!r} (expected one of {FAULT_ACTIONS})")
        if self.action == "join":
            if self.server is None:
                raise CacheServerError("join fault requires server=<CacheServer>")
        elif self.node is None:
            raise CacheServerError(f"{self.action} fault requires node=<name>")

    @property
    def target(self) -> str:
        return self.node if self.node is not None else self.server.name


class FaultSchedule:
    """A validated, time-ordered list of :class:`FaultEvent` rows."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """The time of the last scheduled fault (0.0 when empty)."""
        return self.events[-1].at if self.events else 0.0

    def describe(self) -> List[str]:
        return [f"t={e.at:g}s {e.action} {e.target}" for e in self.events]


class FaultInjector:
    """Fire a :class:`FaultSchedule` against a controller as time advances.

    The injector owns a private event engine so fault ordering is governed
    by simulated time alone — the replay engine only has to call
    :meth:`fire_due` with the current clock reading at its clock-advance
    points (the same points in serial and concurrent replay).
    """

    def __init__(self, controller: ClusterController,
                 schedule: FaultSchedule) -> None:
        self.controller = controller
        self.schedule = schedule
        self.fired: List[ClusterEvent] = []
        #: Observability hook (:class:`repro.obs.Tracer`), installed for a
        #: traced replay by :func:`repro.obs.install_tracing`; each fired
        #: fault then records an instant event (``cluster:kill`` etc.).
        self.tracer: Optional[object] = None
        self._engine = EventEngine()
        for event in schedule:
            self._engine.schedule_at(event.at, self._apply(event))

    def _apply(self, event: FaultEvent) -> Callable[[], None]:
        def fire() -> None:
            if event.action == "join":
                result = self.controller.join(event.server)
            else:
                result = getattr(self.controller, event.action)(event.node)
            self.fired.append(result)
            if self.tracer is not None:
                self.tracer.instant(f"cluster:{event.action}",
                                    node=event.target, at=event.at)
        return fire

    def schedule_probe(self, at: float, probe: Callable[[], None]) -> None:
        """Register an extra callback (e.g. a stats sample) at time ``at``.

        Probes share the fault engine, so a probe at the same instant as a
        fault fires in schedule order (insertion order breaks the tie) —
        experiments use this to sample segment boundaries deterministically.
        """
        self._engine.schedule_at(at, probe)

    @property
    def pending(self) -> int:
        return self._engine.pending_events

    def fire_due(self, now: float) -> int:
        """Fire every event scheduled at or before ``now``; returns the count."""
        before = len(self.fired)
        self._engine.run(until=now)
        return len(self.fired) - before
