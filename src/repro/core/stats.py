"""Statistics collected by CacheGenie itself (per cached object and global)."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class DeclarationInfo:
    """How one cached object was declared (queryset-native vs legacy keywords).

    ``inferred`` records whether the cache class was picked by shape
    inference (queryset form) or named explicitly (keyword form); ``shape``
    is the canonical query-shape fingerprint used for duplicate detection.
    """

    QUERYSET = "queryset"
    KEYWORDS = "keywords"

    api: str
    cache_class: str
    inferred: bool
    shape: str

    def as_dict(self) -> Dict[str, object]:
        return {"api": self.api, "cache_class": self.cache_class,
                "inferred": self.inferred, "shape": self.shape}


@dataclass
class CachedObjectStats:
    """Counters for a single cached object."""

    cache_hits: int = 0
    cache_misses: int = 0
    db_fallbacks: int = 0          # evaluate() had to query the database
    transparent_fetches: int = 0   # served through ORM interception
    updates_applied: int = 0       # trigger applied an incremental update
    invalidations: int = 0         # trigger deleted a key
    recomputations: int = 0        # value recomputed from the DB (trigger or
                                   # background refresh)
    cas_retries: int = 0           # CAS conflicts retried inside triggers
    stale_served: int = 0          # reads answered with a known-stale value
                                   # (leased invalidation / async-refresh)
    trigger_invocations: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_ratio"] = self.hit_ratio
        return out


@dataclass
class CacheGenieStats:
    """Aggregated statistics across all cached objects."""

    per_object: Dict[str, CachedObjectStats] = field(default_factory=dict)
    #: Per-object declaration metadata (api used, inferred class, shape).
    declarations: Dict[str, DeclarationInfo] = field(default_factory=dict)

    def for_object(self, name: str) -> CachedObjectStats:
        if name not in self.per_object:
            self.per_object[name] = CachedObjectStats()
        return self.per_object[name]

    def totals(self) -> CachedObjectStats:
        total = CachedObjectStats()
        for stats in self.per_object.values():
            for f in fields(CachedObjectStats):
                setattr(total, f.name, getattr(total, f.name) + getattr(stats, f.name))
        return total

    def declaration_counts(self) -> Dict[str, int]:
        """How many objects were declared through each API form."""
        counts = {DeclarationInfo.QUERYSET: 0, DeclarationInfo.KEYWORDS: 0}
        for info in self.declarations.values():
            counts[info.api] = counts.get(info.api, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        out = {name: stats.as_dict() for name, stats in self.per_object.items()}
        out["_total"] = self.totals().as_dict()
        if self.declarations:
            out["_declarations"] = {
                name: info.as_dict() for name, info in self.declarations.items()
            }
        return out
