"""Background refresh worker for stale-serving consistency strategies.

The ``leased-invalidate`` and ``async-refresh`` strategies decouple *serving*
from *recomputing*: a read that finds a stale entry returns it immediately
and schedules one recompute instead of blocking on the database.  The
:class:`RefreshQueue` models the background worker that performs those
recomputes: entries are keyed by cache key (a burst of stale reads schedules
exactly one refresh), each carries a virtual-time ``ready_at``, and the queue
drains lazily whenever the application next touches the cache — the same
way a worker thread would make progress between requests.

Refreshes recompute through the owning cached object and store through its
strategy (so async-refresh envelopes get a new freshness deadline, and a
leased key's fresh ``set`` clears the server-side stale retention).  Each
completed refresh credits the object's ``recomputations`` counter — the
background analogue of a blocking ``db_fallbacks``.

**Worker contexts.**  Under the concurrent replay engine each worker models
its own refresh thread: :meth:`RefreshQueue.switch_context` parks the live
pending set and installs the worker's own (mirroring
:meth:`TriggerOpQueue.switch_context
<repro.core.trigger_queue.TriggerOpQueue.switch_context>`), so a worker
drains only the refreshes its own stale reads scheduled and coalescing is
per worker.  At worker teardown :meth:`merge_context` folds any outstanding
refreshes back into the shared (default) queue — background work survives
the replay, it just loses its thread affinity.  The serial pipeline never
switches contexts: one worker *is* the default refresh thread.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .cache_classes.base import CacheClass


class _PendingRefresh:
    __slots__ = ("cached_object", "key", "params", "ready_at")

    def __init__(self, cached_object: "CacheClass", key: str,
                 params: Dict[str, Any], ready_at: float) -> None:
        self.cached_object = cached_object
        self.key = key
        self.params = params
        self.ready_at = ready_at


class RefreshQueue:
    """Deduplicated queue of pending background recomputes.

    ``clock`` is a callable returning virtual seconds (the genie's clock);
    ``delay_seconds`` models the latency between scheduling a refresh and
    the background worker completing it — with the default of 0 the refresh
    is applied at the next drain point (still never on the critical path of
    the read that scheduled it).
    """

    def __init__(self, clock: Callable[[], float],
                 delay_seconds: float = 0.0) -> None:
        self.clock = clock
        self.delay_seconds = float(delay_seconds)
        self._pending: "OrderedDict[str, _PendingRefresh]" = OrderedDict()
        self._draining = False
        #: Parked (pending, draining) state of inactive worker contexts.
        self._contexts: Dict[Any, Tuple["OrderedDict[str, _PendingRefresh]",
                                        bool]] = {}
        self._context_key: Any = None
        #: Observability hook (:class:`repro.obs.Tracer`), installed for a
        #: traced replay by :func:`repro.obs.install_tracing`; None (the
        #: default) keeps drains and recomputes untraced and unperturbed.
        self.tracer: Optional[Any] = None
        # Lifetime statistics, for tests and the ablation report.
        self.scheduled = 0
        self.coalesced = 0
        self.completed = 0
        #: Refreshes dropped because their key's cache node died while the
        #: claim was outstanding (see :meth:`drop_orphaned`).
        self.orphaned_dropped = 0
        #: Keys in completion order — lets tests pin that a fixed scheduler
        #: seed drains contended refreshes in a deterministic order.
        self.completed_log: List[str] = []

    # -- state ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def pending_keys(self) -> List[str]:
        return list(self._pending)

    # -- worker contexts --------------------------------------------------------

    @property
    def context_key(self) -> Any:
        """The key of the live refresh context (None = the default thread)."""
        return self._context_key

    def switch_context(self, key: Any) -> None:
        """Park the live pending-refresh state and make ``key``'s state live.

        Each concurrent worker is its own refresh thread: stale reads it
        serves schedule into its context, and its drain points complete only
        its own backlog.  Mirrors :meth:`TriggerOpQueue.switch_context
        <repro.core.trigger_queue.TriggerOpQueue.switch_context>`.
        """
        if key == self._context_key:
            return
        self._contexts[self._context_key] = (self._pending, self._draining)
        self._pending, self._draining = self._contexts.pop(
            key, (OrderedDict(), False))
        self._context_key = key

    def merge_context(self, key: Any) -> int:
        """Fold a parked context's pending refreshes into the live one.

        Worker teardown: a refresh the worker scheduled but never drained is
        still owed to the cache — it returns to the live (normally default)
        queue instead of vanishing with its thread.  A key already pending
        in the live context coalesces.  Returns the number of refreshes
        adopted.
        """
        parked = self._contexts.pop(key, None)
        if parked is None:
            return 0
        adopted = 0
        for pending_key, entry in parked[0].items():
            if pending_key in self._pending:
                self.coalesced += 1
            else:
                self._pending[pending_key] = entry
                adopted += 1
        return adopted

    def drop_context(self, key: Any) -> int:
        """Forget a parked context outright, discarding its pending refreshes
        (scenario teardown — nothing will ever drain them)."""
        parked = self._contexts.pop(key, None)
        return len(parked[0]) if parked is not None else 0

    # -- scheduling -------------------------------------------------------------

    def schedule(self, cached_object: "CacheClass", key: str,
                 params: Dict[str, Any]) -> bool:
        """Queue one background recompute of ``key``.

        A key already pending coalesces (the later schedule is a no-op) —
        this is what turns a thundering herd of stale reads into a single
        database recompute.  Returns True if a new refresh was queued.
        """
        telemetry = getattr(getattr(cached_object, "app_cache", None),
                            "telemetry", None)
        if telemetry is not None:
            # Every schedule call is one stale serve (coalesced or not) —
            # the per-key staleness signal for adaptive band selection.
            telemetry.note_stale(key)
        if key in self._pending:
            self.coalesced += 1
            return False
        self.scheduled += 1
        self._pending[key] = _PendingRefresh(
            cached_object, key, dict(params),
            ready_at=self.clock() + self.delay_seconds)
        return True

    # -- draining ---------------------------------------------------------------

    def drain(self, now: Optional[float] = None) -> int:
        """Run every pending refresh whose ``ready_at`` has passed.

        Re-entrant calls (a refresh's own database statements trigger a
        drain-calling code path) return immediately.  Returns the number of
        refreshes completed.
        """
        if self._draining or not self._pending:
            return 0
        now = self.clock() if now is None else now
        due = [key for key, entry in self._pending.items()
               if entry.ready_at <= now]
        if not due:
            return 0
        self._draining = True
        tracer = self.tracer
        span = (tracer.begin("refresh:drain", due=len(due))
                if tracer is not None else None)
        try:
            for key in due:
                entry = self._pending.pop(key)
                self._run(entry)
            return len(due)
        finally:
            if span is not None:
                tracer.end(span)
            self._draining = False

    def discard(self) -> int:
        """Drop every pending refresh, parked contexts included (teardown)."""
        dropped = len(self._pending)
        self._pending.clear()
        for pending, _draining in self._contexts.values():
            dropped += len(pending)
        self._contexts.clear()
        return dropped

    def discard_for(self, cached_object: "CacheClass") -> int:
        """Drop the pending refreshes scheduled by one cached object.

        Called when the object is removed: a refresh that outlives its
        declaration would recompute a dead query and repopulate a key whose
        triggers are gone (the same leak-after-removal class of bug that
        per-object stats once had).
        """
        victims = [key for key, entry in self._pending.items()
                   if entry.cached_object is cached_object]
        for key in victims:
            del self._pending[key]
        dropped = len(victims)
        # Sweep parked worker contexts too: a removal that races a paused
        # worker must not leave that worker a refresh of a dead query.
        for pending, _draining in self._contexts.values():
            parked_victims = [key for key, entry in pending.items()
                              if entry.cached_object is cached_object]
            for key in parked_victims:
                del pending[key]
            dropped += len(parked_victims)
        return dropped

    def drop_orphaned(self, is_orphaned: Callable[[str], bool]) -> int:
        """Drop pending refreshes whose keys satisfy ``is_orphaned``.

        Cluster fault handling: when a cache node dies, any refresh claim a
        worker held for one of its keys is orphaned — completing it would
        write through to a dead node (a fail-fast no-op) while the claim's
        existence keeps other readers from re-claiming the key.  The cluster
        controller calls this with "routes to the dead node" as the
        predicate so surviving workers can win a fresh claim within one
        refresh cycle.  Sweeps the live context *and* every parked worker
        context (a dead lease holder is usually a parked worker).  Returns
        the number of claims dropped.
        """
        victims = [key for key in self._pending if is_orphaned(key)]
        for key in victims:
            del self._pending[key]
        dropped = len(victims)
        for pending, _draining in self._contexts.values():
            parked_victims = [key for key in pending if is_orphaned(key)]
            for key in parked_victims:
                del pending[key]
            dropped += len(parked_victims)
        self.orphaned_dropped += dropped
        return dropped

    def _run(self, entry: _PendingRefresh) -> None:
        tracer = self.tracer
        if tracer is not None:
            span = tracer.begin("refresh:recompute", key=entry.key)
            try:
                self._run_body(entry)
            finally:
                tracer.end(span)
            return
        self._run_body(entry)

    def _run_body(self, entry: _PendingRefresh) -> None:
        cached_object = entry.cached_object
        frozen = cached_object._freeze(
            cached_object.compute_from_db(entry.params))
        # Stored through the *current* strategy: if the key's band switched
        # while the refresh was pending (adaptive consistency), the store
        # re-homes the entry under the new band's envelope + TTL.
        cached_object.strategy.store(cached_object, cached_object.app_cache,
                                     entry.key, frozen)
        cached_object.stats.recomputations += 1
        telemetry = getattr(cached_object.app_cache, "telemetry", None)
        if telemetry is not None:
            telemetry.note_refresh(entry.key)
        self.completed += 1
        self.completed_log.append(entry.key)
