"""Opt-in memo fast paths for compiled-trace replays.

Replaying a :class:`~repro.workload.trace.CompiledTrace` enables a set of
memos that are *pure* with respect to replay semantics — each caches the
result of a deterministic function (key validation, template shape matching,
hash-ring placement, key-scheme encoding) whose inputs cannot change without
the memo being invalidated or cleared:

* the interceptor's per-shape template-match memo
  (:meth:`~repro.core.interception.CacheGenieInterceptor.enable_match_cache`),
* every cached object's :class:`~repro.core.keys.KeyScheme` value-tuple memo,
* every cache server's validated-key set
  (:meth:`~repro.memcache.server.CacheServer.enable_key_cache`),
* every hash ring's key→server placement memo (cleared automatically on
  membership changes, so cluster kill/revive faults stay exact),
* the serializer's scalar-row fast copy (a shallow ``dict()`` where every
  value is an immutable scalar — exactly what ``deepcopy`` would return).

The memos default to **off**: a plain :class:`WorkloadTrace` replay runs the
historical code paths untouched, which is what lets the differential suite
(and the benchmark) compare compiled against uncompiled byte for byte.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, List

from . import serializer


def _rings_and_servers(client: Any) -> Iterator[Any]:
    """Yield the rings and servers reachable from one cache client."""
    yield client.ring
    yield from client._servers.values()
    gutter = getattr(client, "gutter", None)
    if gutter is not None:
        yield gutter.ring
        yield from gutter._servers.values()


def _fastpath_targets(genie: Any) -> List[Any]:
    """Every memo-capable object reachable from a CacheGenie manager."""
    targets: List[Any] = [genie.interceptor]
    targets.extend(obj.keys for obj in genie.cached_objects.values())
    for client in (genie.app_cache, genie.trigger_cache):
        targets.extend(_rings_and_servers(client))
    return targets


def _toggle(target: Any, enable: bool) -> None:
    for method in ("enable_match_cache", "enable_memo", "enable_key_cache",
                   "enable_placement_cache"):
        fn = getattr(target, method if enable else method.replace("enable", "disable"),
                     None)
        if fn is not None:
            fn()


@contextlib.contextmanager
def compiled_fastpath(genie: Any) -> Iterator[None]:
    """Enable every memo fast path for the duration of a compiled replay.

    The memo state is torn down on exit (including on error), so nothing
    leaks into a subsequent uncompiled replay against the same scenario.
    """
    targets = _fastpath_targets(genie)
    for target in targets:
        _toggle(target, True)
    serializer.enable_fast_copy()
    try:
        yield
    finally:
        serializer.disable_fast_copy()
        for target in targets:
            _toggle(target, False)
