"""Cache-consistency strategies.

The paper exposes three per-cached-object strategies (§3.1, §4):

* ``update-in-place`` (default) — triggers incrementally update cached values;
* ``invalidate`` — triggers delete affected keys; the next read recomputes;
* ``expiry`` — no triggers; entries simply expire after a fixed interval
  (the classic, weakest option the paper argues against for dynamic sites).
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import CacheClassError

UPDATE_IN_PLACE = "update-in-place"
INVALIDATE = "invalidate"
EXPIRY = "expiry"

ALL_STRATEGIES: FrozenSet[str] = frozenset({UPDATE_IN_PLACE, INVALIDATE, EXPIRY})

#: Strategies that require triggers on the underlying tables.
TRIGGERED_STRATEGIES: FrozenSet[str] = frozenset({UPDATE_IN_PLACE, INVALIDATE})


def validate_strategy(strategy: str) -> str:
    """Validate a strategy name, returning it unchanged."""
    if strategy not in ALL_STRATEGIES:
        raise CacheClassError(
            f"unknown update_strategy {strategy!r}; expected one of {sorted(ALL_STRATEGIES)}"
        )
    return strategy


def needs_triggers(strategy: str) -> bool:
    """Return True if the strategy keeps the cache consistent via triggers."""
    return strategy in TRIGGERED_STRATEGIES
