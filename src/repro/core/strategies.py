"""First-class, pluggable cache-consistency strategies.

The paper exposes three per-cached-object strategies (§3.1, §4), selected
with ``cacheable(..., update_strategy=...)`` or inherited from the genie's
``default_strategy``.  They used to be plain strings dispatched with
``if strategy == "invalidate"`` comparisons scattered across the trigger
generator, the commit-time op queue, the cache-class base, and the benchmark
scenarios; they are now *objects* implementing the
:class:`ConsistencyStrategy` protocol, resolved once through a registry, so
every layer dispatches through the object and new strategies plug in without
touching any of those layers.

Built-in strategies
-------------------

``update-in-place`` (:class:`UpdateInPlaceStrategy`, the default)
    Generated triggers *incrementally patch* the cached value on every
    INSERT/UPDATE/DELETE of a backing row: counts bump, Top-K lists splice
    the changed row in or out, feature rows are rewritten.  Readers never
    see stale data and — unlike invalidation — never pay a recompute after
    a write.  With commit-time batching (the system default) each
    transaction's mutations coalesce per key and flush at COMMIT as one
    ``gets_multi`` + ``cas_multi`` pair per server with per-key verdicts;
    the eager mode runs a per-key ``gets``/``cas`` loop inside the trigger.
    Moves ``updates_applied`` (and ``recomputations`` where a patch is not
    derivable), plus ``cas_retries``/``invalidations`` under contention.

``invalidate`` (:class:`InvalidateStrategy`)
    Triggers *delete* every affected key; the next read misses and
    recomputes from the database.  Always correct, no stale data, but
    read-heavy workloads pay a database round trip after every write and
    hot keys can thrash.  Under batching, deletes coalesce per key and
    flush as one ``delete_multi`` per server at COMMIT.
    Moves ``invalidations`` and, on the read side, ``cache_misses`` +
    ``db_fallbacks``.

``expiry`` (:class:`ExpiryStrategy`)
    No triggers at all: entries carry a TTL (``expiry_seconds``, default
    30 s) and readers tolerate staleness up to that bound — the classic
    memcached deployment the paper argues against for dynamic sites.
    Moves ``expirations`` on the servers; neither ``updates_applied`` nor
    ``invalidations`` ever change.

``leased-invalidate`` (:class:`LeasedInvalidateStrategy`)
    Invalidation plus a short per-key *lease*: a trigger-side delete
    retains the old value as *stale* for ``stale_seconds``, and the cache
    server hands out at most one lease token per ``lease_seconds`` per key.
    The reader that wins the token schedules one background recompute; every
    other reader in the window is served the stale value instead of
    stampeding the database — the fix for invalidation's hot-key thundering
    herd (the lease design of Nishtala et al., *Scaling Memcache at
    Facebook*).  Staleness is bounded by the lease window.  Moves
    ``stale_served`` + ``recomputations`` in place of most of plain
    invalidation's ``db_fallbacks``.

``async-refresh`` (:class:`AsyncRefreshStrategy`)
    Stale-while-revalidate, a new point between ``expiry`` and
    ``invalidate``: entries carry a *freshness* window (no triggers), but a
    read past the window still serves the stale entry and schedules exactly
    one background recompute instead of blocking on the database the way an
    expired entry would.  Worst-case staleness is the hard TTL
    (``refresh_seconds + stale_grace_seconds``) — a rarely-read entry can be
    served up to that age before it dies; once a stale read fires the
    refresh, subsequent reads are fresh again.  Moves ``stale_served`` +
    ``recomputations``; never ``invalidations``.

Extending
---------

Subclass :class:`ConsistencyStrategy`, override the hooks the strategy
needs, and call :func:`register_strategy`::

    class TimestampedInvalidate(InvalidateStrategy):
        name = "timestamped-invalidate"
        ...

    register_strategy(TimestampedInvalidate())
    genie.cacheable(..., update_strategy="timestamped-invalidate")

Legacy string names (``"update-in-place"``, ``"invalidate"``, ``"expiry"``)
resolve through the registry to module-level singletons, so every existing
``cacheable(...)`` call keeps working unchanged.
"""

from __future__ import annotations

from typing import (Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING,
                    Union)

from ..errors import CacheClassError
from ..memcache.server import LEASE_ACQUIRED, LEASE_HIT, LEASE_STALE

if TYPE_CHECKING:  # pragma: no cover
    from .cache_classes.base import CacheClass

#: Canonical names of the built-in strategies.
UPDATE_IN_PLACE = "update-in-place"
INVALIDATE = "invalidate"
EXPIRY = "expiry"
LEASED_INVALIDATE = "leased-invalidate"
ASYNC_REFRESH = "async-refresh"

#: Key marking an async-refresh wrapper envelope in the cache.
_FRESH_UNTIL_KEY = "__cg_fresh_until__"


class ConsistencyStrategy:
    """The protocol every cache-consistency strategy implements.

    A strategy object owns *policy*; the cache classes own *mechanism*
    (how to patch a Top-K list, how to compute a count).  One strategy
    instance is shared by every cached object using it, so instances hold
    configuration only (windows, TTLs) — per-object state lives on the
    :class:`~repro.core.cache_classes.base.CacheClass` and per-transaction
    state on the :class:`~repro.core.trigger_queue.TriggerOpQueue`.

    Hook overview (everything has a working default):

    ===========================  ==================================================
    hook                         responsibility
    ===========================  ==================================================
    ``needs_triggers``           class attr: install DB triggers for this strategy?
    ``serves_stale``             class attr: may a read return stale data?
    ``counters_moved``           class attr: stats this strategy moves (for docs)
    ``on_write``                 a trigger fired: propagate the change
    ``invalidate_eager``         delete one key right now (eager trigger path)
    ``flush_invalidations``      batched-flush participation: flush queued deletes
    ``render_trigger_body``      per-key body lines of the generated trigger source
    ``fetch`` / ``fetch_multi``  full read path of evaluate()/evaluate_many()
    ``on_read_miss``             compute from the DB and populate the cache
    ``wrap_for_store``           envelope applied to stored values (single and
                                 batched write-back paths both apply it per key)
    ``expiry_for``               server-side TTL for stored entries
    ===========================  ==================================================
    """

    #: Registry name; also what ``CacheClass.update_strategy`` reports.
    name: str = "abstract"
    #: Whether CacheGenie must install INSERT/UPDATE/DELETE triggers.
    needs_triggers: bool = False
    #: Whether a read may return data older than the latest committed write.
    serves_stale: bool = False
    #: Statistics counters this strategy moves (documentation/introspection).
    counters_moved: Tuple[str, ...] = ()
    #: One-line description of how the strategy degrades when a cache node
    #: dies (cluster dynamics; see docs/CLUSTER.md's failover table).
    failover: str = ("reads miss through to the database; writes are "
                     "fail-fast no-ops against the dead node")

    # -- storage ---------------------------------------------------------------

    def expiry_for(self, cached_object: "CacheClass",
                   key: Optional[str] = None) -> Optional[float]:
        """Server-side TTL (seconds) for this object's entries, or None.

        ``key`` is the cache key being stored, for strategies whose policy
        varies per key (the adaptive strategy); static strategies ignore it.
        """
        return None

    def wrap_for_store(self, cached_object: "CacheClass", frozen: Any,
                       key: Optional[str] = None) -> Any:
        """Envelope a frozen value before it is stored (identity by default).

        ``key`` is the cache key being stored (see :meth:`expiry_for`).
        """
        return frozen

    def store(self, cached_object: "CacheClass", client: Any, key: str,
              frozen: Any) -> None:
        """Write a computed value through this strategy's envelope + TTL."""
        client.set(key, self.wrap_for_store(cached_object, frozen, key=key),
                   expire=self.expiry_for(cached_object, key=key))

    # -- read path -------------------------------------------------------------

    def fetch(self, cached_object: "CacheClass", key: str,
              params: Dict[str, Any]) -> Any:
        """The full read path of ``evaluate()``: return the frozen value.

        The default is the classic look-aside protocol: ``get``, and on a
        miss compute from the database and populate.  Strategies that serve
        stale data (leases, stale-while-revalidate) override this.
        """
        raw = cached_object.app_cache.get(key)
        if raw is not None:
            cached_object.stats.cache_hits += 1
            return raw
        cached_object.stats.cache_misses += 1
        cached_object.stats.db_fallbacks += 1
        return self.on_read_miss(cached_object, key, params)

    def fetch_multi(self, client: Any,
                    items: Sequence[Tuple["CacheClass", str, Dict[str, Any]]],
                    ) -> Dict[str, Tuple[Any, bool]]:
        """Batched hit-side of :meth:`fetch` for ``evaluate_many()``.

        ``items`` carries unique keys with their owning object and
        parameters.  Returns ``{key: (frozen_value, was_stale)}`` for every
        key this strategy can serve without the database; the caller
        computes the rest and writes them back through :meth:`store_multi`.
        Side effects (scheduling refreshes) happen here; per-request hit/
        miss statistics are counted by the caller.
        """
        found = client.get_multi([key for _, key, _ in items])
        return {key: (value, False) for key, value in found.items()}

    def on_read_miss(self, cached_object: "CacheClass", key: str,
                     params: Dict[str, Any]) -> Any:
        """Miss fallback: compute from the database, populate, return frozen."""
        frozen = cached_object._freeze(cached_object.compute_from_db(params))
        self.store(cached_object, cached_object.app_cache, key, frozen)
        return frozen

    def peek(self, cached_object: "CacheClass", key: str) -> Optional[Any]:
        """Return the frozen cached value without any database fallback."""
        return cached_object.app_cache.get(key)

    # -- write path (trigger side) ---------------------------------------------

    def on_write(self, cached_object: "CacheClass", table: str, event: str,
                 new: Optional[Dict[str, Any]],
                 old: Optional[Dict[str, Any]]) -> None:
        """A database trigger fired for a row change affecting this object.

        Only called when :attr:`needs_triggers` is True (otherwise no
        triggers exist to fire).  The default does nothing.
        """

    def invalidate_eager(self, cached_object: "CacheClass", key: str) -> bool:
        """Delete one key immediately (the eager, per-operation trigger path).

        Returns True if the key existed.  Strategies with richer
        invalidation semantics (stale retention) override this.
        """
        return cached_object.trigger_cache.delete(key)

    def flush_invalidations(self, client: Any, keys: Sequence[str]) -> List[str]:
        """Batched-flush participation: flush the commit-time queue's pending
        invalidations for this strategy in one multi-op per server.

        Returns the keys that existed (for ``invalidations`` crediting).
        """
        return client.delete_multi(list(keys))

    def render_trigger_body(self, cached_object: "CacheClass",
                            batched: bool) -> List[str]:
        """Source lines of the generated trigger's per-key loop (§5.2).

        ``batched`` selects between the commit-time-queue body and the
        paper's original eager per-key body.  Only consulted when
        :attr:`needs_triggers` is True.
        """
        return ["    pass  # no trigger-side work for this strategy"]

    # -- introspection ---------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Summary used by docs tooling and the strategy ablation report."""
        return {
            "name": self.name,
            "needs_triggers": self.needs_triggers,
            "serves_stale": self.serves_stale,
            "counters_moved": list(self.counters_moved),
            "failover": self.failover,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Built-in strategies
# ---------------------------------------------------------------------------

class UpdateInPlaceStrategy(ConsistencyStrategy):
    """Triggers incrementally patch affected entries (the paper's headline)."""

    name = UPDATE_IN_PLACE
    needs_triggers = True
    serves_stale = False
    counters_moved = ("updates_applied", "recomputations", "cas_retries",
                      "invalidations")
    failover = ("CAS tokens die with the node: flush-time cas_multi reports "
                "'missing' and falls back to invalidation (forwarded to the "
                "gutter), so no stale fallback copy survives a mutation")

    def on_write(self, cached_object: "CacheClass", table: str, event: str,
                 new: Optional[Dict[str, Any]],
                 old: Optional[Dict[str, Any]]) -> None:
        cached_object.apply_incremental_update(table, event, new, old)

    def render_trigger_body(self, cached_object: "CacheClass",
                            batched: bool) -> List[str]:
        apply_fn = f"apply_{cached_object.cache_class_type.lower()}_update"
        if batched:
            return [
                "    for cache_key in affected:",
                "        # flush: gets_multi -> apply chain -> cas_multi (retry losers)",
                f"        queue.enqueue_mutate(cache_key, lambda cached_value: {apply_fn}(",
                "            cached_value, event, new_row, old_row))",
            ]
        return [
            "    for cache_key in affected:",
            "        (cached_value, cas_token) = cache.gets(cache_key)",
            "        if cached_value is None:",
            "            continue  # not cached: the trigger quits",
            f"        new_value = {apply_fn}(",
            "            cached_value, event, new_row, old_row)",
            "        if new_value is None:",
            "            continue",
            "        if not cache.cas(cache_key, new_value, cas_token):",
            "            cache.delete(cache_key)  # lost the race: fall back to invalidation",
        ]


class InvalidateStrategy(ConsistencyStrategy):
    """Triggers delete affected keys; the next read recomputes."""

    name = INVALIDATE
    needs_triggers = True
    serves_stale = False
    counters_moved = ("invalidations", "cache_misses", "db_fallbacks")
    failover = ("deletes are forwarded to the gutter pool so fallback reads "
                "never outlive an invalidation; reads miss through otherwise")

    def on_write(self, cached_object: "CacheClass", table: str, event: str,
                 new: Optional[Dict[str, Any]],
                 old: Optional[Dict[str, Any]]) -> None:
        cached_object.invalidate_affected(table, event, new, old)

    def render_trigger_body(self, cached_object: "CacheClass",
                            batched: bool) -> List[str]:
        if batched:
            return [
                "    for cache_key in affected:",
                "        queue.enqueue_delete(cache_key)  # coalesced per key",
            ]
        return [
            "    for cache_key in affected:",
            "        cache.delete(cache_key)",
        ]


class ExpiryStrategy(ConsistencyStrategy):
    """No triggers: entries age out on a TTL (classic memcached)."""

    #: Default TTL when the cached object declares no ``expiry_seconds``.
    DEFAULT_TTL = 30.0

    name = EXPIRY
    needs_triggers = False
    serves_stale = True
    counters_moved = ("cache_misses", "db_fallbacks")
    failover = ("gutter entries carry the gutter TTL (shorter than the "
                "strategy TTL), so staleness stays bounded by the smaller of "
                "the two windows")

    def __init__(self, default_ttl: float = DEFAULT_TTL) -> None:
        self.default_ttl = float(default_ttl)

    def expiry_for(self, cached_object: "CacheClass",
                   key: Optional[str] = None) -> Optional[float]:
        if cached_object.expiry_seconds is not None:
            return cached_object.expiry_seconds
        return self.default_ttl

    def describe(self) -> Dict[str, Any]:
        out = super().describe()
        out["default_ttl"] = self.default_ttl
        return out


class LeasedInvalidateStrategy(InvalidateStrategy):
    """Invalidation with per-key leases: one reader recomputes, others get
    the retained stale value — invalidation minus the hot-key thundering herd.

    A trigger-side delete becomes a :meth:`~repro.memcache.server.CacheServer.
    lease_delete`: the server drops the live entry but *retains* it as stale
    for ``stale_seconds``.  Reads go through ``lease()``: a fresh entry is a
    plain hit; on a stale entry the server issues at most one lease token
    per ``lease_seconds`` per key — the winner schedules one background
    recompute (via the genie's refresh queue) and every reader in the window,
    winner included, is served the stale value instead of blocking on the
    database.  A true miss (nothing retained) falls back to the database as
    usual.  Staleness is bounded by the stale-retention window.
    """

    name = LEASED_INVALIDATE
    needs_triggers = True
    serves_stale = True
    counters_moved = ("invalidations", "stale_served", "recomputations",
                      "db_fallbacks")
    failover = ("a gutter hit is served LEASE_STALE *without* a token (its "
                "bound is the gutter TTL, no refresh is claimed); a dead "
                "lease holder's claim is dropped by the refresh queue so a "
                "new claimant wins within one cycle")

    def __init__(self, lease_seconds: float = 2.0,
                 stale_seconds: Optional[float] = None) -> None:
        if lease_seconds <= 0:
            raise CacheClassError("lease_seconds must be positive")
        self.lease_seconds = float(lease_seconds)
        #: How long a lease-deleted value is retained as servable-stale.
        self.stale_seconds = float(stale_seconds if stale_seconds is not None
                                   else lease_seconds)

    # -- read path -------------------------------------------------------------

    def fetch(self, cached_object: "CacheClass", key: str,
              params: Dict[str, Any]) -> Any:
        state, value, token = cached_object.app_cache.lease(
            key, self.lease_seconds)
        if state == LEASE_HIT:
            cached_object.stats.cache_hits += 1
            return value
        if state == LEASE_STALE or (state == LEASE_ACQUIRED and value is not None):
            # Stale serve: the value predates the invalidation.  Whoever won
            # the token (at most one reader per lease window) schedules the
            # single background recompute; everyone is unblocked.
            cached_object.stats.cache_hits += 1
            cached_object.stats.stale_served += 1
            if token is not None:
                cached_object.genie.schedule_refresh(cached_object, key, params)
            return value
        # True miss: nothing retained — the classic blocking fallback.
        cached_object.stats.cache_misses += 1
        cached_object.stats.db_fallbacks += 1
        return self.on_read_miss(cached_object, key, params)

    def fetch_multi(self, client: Any,
                    items: Sequence[Tuple["CacheClass", str, Dict[str, Any]]],
                    ) -> Dict[str, Tuple[Any, bool]]:
        states = client.lease_multi([key for _, key, _ in items],
                                    self.lease_seconds)
        served: Dict[str, Tuple[Any, bool]] = {}
        for cached_object, key, params in items:
            state, value, token = states.get(key, (None, None, None))
            if state == LEASE_HIT:
                served[key] = (value, False)
            elif state == LEASE_STALE or (state == LEASE_ACQUIRED
                                          and value is not None):
                if token is not None:
                    cached_object.genie.schedule_refresh(cached_object, key,
                                                         params)
                served[key] = (value, True)
        return served

    # -- write path ------------------------------------------------------------

    def invalidate_eager(self, cached_object: "CacheClass", key: str) -> bool:
        return cached_object.trigger_cache.lease_delete(key, self.stale_seconds)

    def flush_invalidations(self, client: Any, keys: Sequence[str]) -> List[str]:
        return client.lease_delete_multi(list(keys), self.stale_seconds)

    def render_trigger_body(self, cached_object: "CacheClass",
                            batched: bool) -> List[str]:
        if batched:
            return [
                "    for cache_key in affected:",
                "        # coalesced per key; flushed as one lease_delete_multi per server",
                f"        queue.enqueue_delete(cache_key)  # retains stale for {self.stale_seconds}s",
            ]
        return [
            "    for cache_key in affected:",
            f"        cache.lease_delete(cache_key, {self.stale_seconds})",
        ]

    def describe(self) -> Dict[str, Any]:
        out = super().describe()
        out["lease_seconds"] = self.lease_seconds
        out["stale_seconds"] = self.stale_seconds
        return out


class AsyncRefreshStrategy(ConsistencyStrategy):
    """Stale-while-revalidate: serve the stale entry, refresh in the background.

    Entries are stored in an envelope carrying a *freshness deadline*
    (``refresh_seconds`` ahead of the write) under a longer hard TTL.  A
    read within the deadline is a plain hit.  A read past it still serves
    the (stale) entry — no blocking database fallback — and schedules
    exactly one background recompute through the genie's refresh queue;
    once the recompute lands, reads are fresh again.  Entries untouched
    past the hard TTL (``refresh_seconds + stale_grace_seconds``) age out
    on the server like any expiring entry — which makes the hard TTL the
    *worst-case* staleness a read can observe (a rarely-read key may be
    served just before it dies); the freshness window only bounds how old
    an entry can get before a read starts a refresh.

    No triggers are installed: this sits between ``expiry`` (which blocks
    on a database recompute the moment the TTL passes) and ``invalidate``
    (which needs trigger round trips on every write).
    """

    name = ASYNC_REFRESH
    needs_triggers = False
    serves_stale = True
    counters_moved = ("stale_served", "recomputations", "cache_misses",
                      "db_fallbacks")
    failover = ("envelopes stored to the gutter keep their freshness "
                "deadline but expire on the gutter TTL; orphaned refresh "
                "claims are dropped like leased-invalidate's")

    def __init__(self, refresh_seconds: float = 30.0,
                 stale_grace_seconds: Optional[float] = None) -> None:
        if refresh_seconds <= 0:
            raise CacheClassError("refresh_seconds must be positive")
        self.refresh_seconds = float(refresh_seconds)
        #: How long past the freshness deadline an entry stays servable.
        self.stale_grace_seconds = float(
            stale_grace_seconds if stale_grace_seconds is not None
            else 4.0 * refresh_seconds)

    # -- storage ---------------------------------------------------------------

    def _freshness_window(self, cached_object: "CacheClass") -> float:
        if cached_object.expiry_seconds is not None:
            return cached_object.expiry_seconds
        return self.refresh_seconds

    def expiry_for(self, cached_object: "CacheClass",
                   key: Optional[str] = None) -> Optional[float]:
        return self._freshness_window(cached_object) + self.stale_grace_seconds

    def wrap_for_store(self, cached_object: "CacheClass", frozen: Any,
                       key: Optional[str] = None) -> Any:
        deadline = (cached_object.genie.now()
                    + self._freshness_window(cached_object))
        return {_FRESH_UNTIL_KEY: deadline, "value": frozen}

    def _unwrap(self, cached_object: "CacheClass", raw: Any) -> Tuple[Any, bool]:
        """Return ``(frozen_value, is_stale)`` from a stored envelope."""
        if isinstance(raw, dict) and _FRESH_UNTIL_KEY in raw:
            stale = cached_object.genie.now() > raw[_FRESH_UNTIL_KEY]
            return raw["value"], stale
        return raw, False  # not an envelope (e.g. strategy switched): fresh

    # -- read path -------------------------------------------------------------

    def fetch(self, cached_object: "CacheClass", key: str,
              params: Dict[str, Any]) -> Any:
        raw = cached_object.app_cache.get(key)
        if raw is not None:
            frozen, stale = self._unwrap(cached_object, raw)
            cached_object.stats.cache_hits += 1
            if stale:
                cached_object.stats.stale_served += 1
                cached_object.genie.schedule_refresh(cached_object, key, params)
            return frozen
        cached_object.stats.cache_misses += 1
        cached_object.stats.db_fallbacks += 1
        return self.on_read_miss(cached_object, key, params)

    def fetch_multi(self, client: Any,
                    items: Sequence[Tuple["CacheClass", str, Dict[str, Any]]],
                    ) -> Dict[str, Tuple[Any, bool]]:
        found = client.get_multi([key for _, key, _ in items])
        served: Dict[str, Tuple[Any, bool]] = {}
        for cached_object, key, params in items:
            raw = found.get(key)
            if raw is None:
                continue
            frozen, stale = self._unwrap(cached_object, raw)
            if stale:
                cached_object.genie.schedule_refresh(cached_object, key, params)
            served[key] = (frozen, stale)
        return served

    def peek(self, cached_object: "CacheClass", key: str) -> Optional[Any]:
        raw = cached_object.app_cache.get(key)
        if raw is None:
            return None
        frozen, _stale = self._unwrap(cached_object, raw)
        return frozen

    def describe(self) -> Dict[str, Any]:
        out = super().describe()
        out["refresh_seconds"] = self.refresh_seconds
        out["stale_grace_seconds"] = self.stale_grace_seconds
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, ConsistencyStrategy] = {}


def register_strategy(strategy: ConsistencyStrategy,
                      replace: bool = False) -> ConsistencyStrategy:
    """Register a strategy instance under its :attr:`name`.

    Raises :class:`~repro.errors.CacheClassError` if the name is taken
    (pass ``replace=True`` to override deliberately) or the object does not
    implement the protocol.
    """
    if not isinstance(strategy, ConsistencyStrategy):
        raise CacheClassError(
            f"{strategy!r} does not implement ConsistencyStrategy")
    name = strategy.name
    if not name or name == ConsistencyStrategy.name:
        raise CacheClassError(
            "consistency strategies must define a non-default name")
    if name in _REGISTRY and not replace:
        raise CacheClassError(
            f"consistency strategy {name!r} is already registered "
            f"({_REGISTRY[name]!r}); pass replace=True to override it")
    _REGISTRY[name] = strategy
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (built-ins included — use with care)."""
    if name not in _REGISTRY:
        raise CacheClassError(f"no consistency strategy named {name!r}")
    del _REGISTRY[name]


def get_strategy(name: str) -> ConsistencyStrategy:
    """Look up a registered strategy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CacheClassError(
            f"unknown update_strategy {name!r}; expected one of "
            f"{sorted(_REGISTRY)} or a ConsistencyStrategy instance"
        ) from None


def resolve_strategy(
    strategy: Union[str, ConsistencyStrategy, None],
    default: Union[str, ConsistencyStrategy] = UPDATE_IN_PLACE,
) -> ConsistencyStrategy:
    """Resolve a strategy spec — a registered name, an instance, or None
    (meaning ``default``) — to a :class:`ConsistencyStrategy` object."""
    if strategy is None:
        strategy = default
    if isinstance(strategy, ConsistencyStrategy):
        return strategy
    if isinstance(strategy, str):
        return get_strategy(strategy)
    raise CacheClassError(
        f"update_strategy must be a registered name or a ConsistencyStrategy "
        f"instance, got {type(strategy).__name__}")


def registered_strategies() -> Dict[str, ConsistencyStrategy]:
    """Snapshot of the registry (name -> strategy instance)."""
    return dict(_REGISTRY)


#: The built-in singletons, registered at import time.
UPDATE_IN_PLACE_STRATEGY = register_strategy(UpdateInPlaceStrategy())
INVALIDATE_STRATEGY = register_strategy(InvalidateStrategy())
EXPIRY_STRATEGY = register_strategy(ExpiryStrategy())
LEASED_INVALIDATE_STRATEGY = register_strategy(LeasedInvalidateStrategy())
ASYNC_REFRESH_STRATEGY = register_strategy(AsyncRefreshStrategy())

#: All registered names at import time (legacy constant, now derived).
ALL_STRATEGIES = frozenset(_REGISTRY)

#: Built-in strategies that require triggers on the underlying tables.
TRIGGERED_STRATEGIES = frozenset(
    name for name, s in _REGISTRY.items() if s.needs_triggers)


# -- legacy string helpers (kept for API compatibility) -------------------------

def validate_strategy(strategy: Union[str, ConsistencyStrategy]) -> str:
    """Validate a strategy spec, returning its canonical *name*.

    The pre-registry API took and returned plain strings; it now resolves
    through the registry, so custom registered strategies validate too.
    """
    return resolve_strategy(strategy).name


def needs_triggers(strategy: Union[str, ConsistencyStrategy]) -> bool:
    """Return True if the strategy keeps the cache consistent via triggers."""
    return resolve_strategy(strategy).needs_triggers
