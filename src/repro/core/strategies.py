"""Cache-consistency strategies.

The paper exposes three per-cached-object strategies (§3.1, §4), selected
with ``cacheable(..., update_strategy=...)`` or inherited from the genie's
``default_strategy``.  ``docs/CONSISTENCY.md`` documents them side by side
with worked examples; this is the condensed contract.

``update-in-place`` (the default)
    Generated triggers *incrementally patch* the cached value on every
    INSERT/UPDATE/DELETE of a backing row: counts bump, Top-K lists splice
    the changed row in or out, feature rows are rewritten.  Readers never
    see stale data and — unlike invalidation — never pay a recompute after
    a write.  Propagation is a read-modify-write: with commit-time batching
    (the system default) each transaction's mutations coalesce per key and
    flush at COMMIT as one ``gets_multi`` + ``cas_multi`` pair per server,
    with per-key verdicts — CAS losers are re-read and retried up to
    ``FLUSH_CAS_MAX_RETRIES`` rounds, then invalidated for safety.  The
    eager mode (``batch_trigger_ops=False``) instead runs a per-key
    ``gets``/``cas`` loop inside the trigger, bounded by
    ``CAS_MAX_RETRIES``, with the same invalidation fallback.
    Moves ``updates_applied`` (and ``recomputations`` where a patch is not
    derivable), plus ``cas_retries``/``invalidations`` under contention.

``invalidate``
    Triggers *delete* every affected key; the next read misses and
    recomputes from the database.  Always correct, no stale data, but
    read-heavy workloads pay a database round trip after every write and
    hot keys can thrash.  Under batching, deletes coalesce per key and
    flush as one ``delete_multi`` per server at COMMIT.
    Moves ``invalidations`` and, on the read side, ``cache_misses`` +
    ``db_fallbacks``.

``expiry``
    No triggers at all: entries carry a TTL (``expiry_seconds``, default
    30 s) and readers tolerate staleness up to that bound — the classic
    memcached deployment the paper argues against for dynamic sites.  The
    only strategy that can return stale data, and the cheapest on writes.
    Moves ``expirations`` on the servers; neither ``updates_applied`` nor
    ``invalidations`` ever change.

Only the triggered strategies (:data:`TRIGGERED_STRATEGIES`) install
database triggers; ``expiry`` objects skip trigger generation entirely,
which is what Experiment 5's "ideal system" exploits by disabling triggers
wholesale.
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import CacheClassError

UPDATE_IN_PLACE = "update-in-place"
INVALIDATE = "invalidate"
EXPIRY = "expiry"

ALL_STRATEGIES: FrozenSet[str] = frozenset({UPDATE_IN_PLACE, INVALIDATE, EXPIRY})

#: Strategies that require triggers on the underlying tables.
TRIGGERED_STRATEGIES: FrozenSet[str] = frozenset({UPDATE_IN_PLACE, INVALIDATE})


def validate_strategy(strategy: str) -> str:
    """Validate a strategy name, returning it unchanged."""
    if strategy not in ALL_STRATEGIES:
        raise CacheClassError(
            f"unknown update_strategy {strategy!r}; expected one of {sorted(ALL_STRATEGIES)}"
        )
    return strategy


def needs_triggers(strategy: str) -> bool:
    """Return True if the strategy keeps the cache consistent via triggers."""
    return strategy in TRIGGERED_STRATEGIES
