"""CacheGenie core: the paper's primary contribution.

High-level caching abstractions (FeatureQuery, LinkQuery, CountQuery,
TopKQuery), the ``cacheable()`` declarative API, automatic trigger
generation, transparent ORM interception, and the §3.3 full-consistency
extension.
"""

from ..orm.template import Param, QueryTemplate
from .cache_classes import (BUILTIN_CACHE_CLASSES, CacheClass, ChainStep,
                            CountQuery, FeatureQuery, LinkQuery, TopKQuery,
                            TriggerSpec)
from .cache_classes.base import evaluate_many
from .interception import CacheGenieInterceptor
from .keys import KeyScheme
from .manager import CacheGenie, cacheable
from .refresh import RefreshQueue
from .stats import CachedObjectStats, CacheGenieStats, DeclarationInfo
from .strategies import (ASYNC_REFRESH, AsyncRefreshStrategy,
                         ConsistencyStrategy, EXPIRY, ExpiryStrategy,
                         INVALIDATE, InvalidateStrategy, LEASED_INVALIDATE,
                         LeasedInvalidateStrategy, UPDATE_IN_PLACE,
                         UpdateInPlaceStrategy, get_strategy,
                         register_strategy, registered_strategies,
                         resolve_strategy, unregister_strategy)
from .trigger_queue import TriggerOpQueue
from .triggergen import TriggerGenerator, render_trigger_source
from .txn2pl import (TransactionalCacheSession, TwoPhaseLockingCoordinator,
                     WouldBlock)

__all__ = [
    "ASYNC_REFRESH",
    "AsyncRefreshStrategy",
    "BUILTIN_CACHE_CLASSES",
    "CacheClass",
    "CacheGenie",
    "CacheGenieInterceptor",
    "CacheGenieStats",
    "CachedObjectStats",
    "ChainStep",
    "ConsistencyStrategy",
    "CountQuery",
    "DeclarationInfo",
    "EXPIRY",
    "ExpiryStrategy",
    "FeatureQuery",
    "INVALIDATE",
    "InvalidateStrategy",
    "KeyScheme",
    "LEASED_INVALIDATE",
    "LeasedInvalidateStrategy",
    "LinkQuery",
    "Param",
    "QueryTemplate",
    "RefreshQueue",
    "TopKQuery",
    "TransactionalCacheSession",
    "TriggerGenerator",
    "TriggerOpQueue",
    "TriggerSpec",
    "TwoPhaseLockingCoordinator",
    "UPDATE_IN_PLACE",
    "UpdateInPlaceStrategy",
    "WouldBlock",
    "cacheable",
    "evaluate_many",
    "get_strategy",
    "register_strategy",
    "registered_strategies",
    "render_trigger_source",
    "resolve_strategy",
    "unregister_strategy",
]
