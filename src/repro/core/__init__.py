"""CacheGenie core: the paper's primary contribution.

High-level caching abstractions (FeatureQuery, LinkQuery, CountQuery,
TopKQuery), the ``cacheable()`` declarative API, automatic trigger
generation, transparent ORM interception, and the §3.3 full-consistency
extension.
"""

from ..orm.template import Param, QueryTemplate
from .cache_classes import (BUILTIN_CACHE_CLASSES, CacheClass, ChainStep,
                            CountQuery, FeatureQuery, LinkQuery, TopKQuery,
                            TriggerSpec)
from .cache_classes.base import evaluate_many
from .interception import CacheGenieInterceptor
from .keys import KeyScheme
from .manager import CacheGenie, cacheable
from .stats import CachedObjectStats, CacheGenieStats, DeclarationInfo
from .strategies import EXPIRY, INVALIDATE, UPDATE_IN_PLACE
from .trigger_queue import TriggerOpQueue
from .triggergen import TriggerGenerator, render_trigger_source
from .txn2pl import (TransactionalCacheSession, TwoPhaseLockingCoordinator,
                     WouldBlock)

__all__ = [
    "BUILTIN_CACHE_CLASSES",
    "CacheClass",
    "CacheGenie",
    "CacheGenieInterceptor",
    "CacheGenieStats",
    "CachedObjectStats",
    "ChainStep",
    "CountQuery",
    "DeclarationInfo",
    "EXPIRY",
    "FeatureQuery",
    "INVALIDATE",
    "KeyScheme",
    "LinkQuery",
    "Param",
    "QueryTemplate",
    "TopKQuery",
    "TransactionalCacheSession",
    "TriggerGenerator",
    "TriggerOpQueue",
    "TriggerSpec",
    "TwoPhaseLockingCoordinator",
    "UPDATE_IN_PLACE",
    "WouldBlock",
    "cacheable",
    "evaluate_many",
    "render_trigger_source",
]
