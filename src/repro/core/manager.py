"""The CacheGenie orchestrator.

A :class:`CacheGenie` instance wires together one ORM registry, its database,
and a set of memcached servers.  Programmers declare cached objects through
:meth:`cacheable` (the paper's API); CacheGenie then

* builds the cache-class instance (query generation),
* generates and installs the database triggers (trigger generation), and
* registers the object with the ORM interceptor (transparent evaluation).

The module-level :func:`cacheable` mirrors the paper's free function: it
forwards to the currently activated CacheGenie instance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import CacheClassError
from ..memcache.client import CacheClient
from ..memcache.server import CacheServer
from ..orm.registry import Registry
from ..storage.database import Database
from .cache_classes import BUILTIN_CACHE_CLASSES, CacheClass
from .interception import CacheGenieInterceptor
from .stats import CacheGenieStats
from .strategies import UPDATE_IN_PLACE
from .trigger_queue import TriggerOpQueue
from .triggergen import TriggerGenerator


class CacheGenie:
    """The caching middleware: declarative cached objects over ORM + DB + cache."""

    def __init__(
        self,
        registry: Registry,
        database: Optional[Database] = None,
        cache_servers: Optional[Sequence[CacheServer]] = None,
        default_strategy: str = UPDATE_IN_PLACE,
        reuse_trigger_connections: bool = False,
        batch_trigger_ops: bool = False,
        cache_address: str = "cache-host:11211",
    ) -> None:
        self.registry = registry
        self.db = database or registry.db
        self.recorder = self.db.recorder
        if cache_servers is None:
            cache_servers = [CacheServer("cache0")]
        self.cache_servers = list(cache_servers)
        self.cache_address = cache_address
        self.default_strategy = default_strategy
        #: Client used by the application (and by evaluate()).
        self.app_cache = CacheClient(self.cache_servers, recorder=self.recorder)
        #: Client used from inside triggers; charges trigger-side costs.
        self.trigger_cache = CacheClient(
            self.cache_servers, recorder=self.recorder,
            from_trigger=True, reuse_connections=reuse_trigger_connections)
        self.interceptor = CacheGenieInterceptor()
        self.trigger_generator = TriggerGenerator(self)
        self.cached_objects: Dict[str, CacheClass] = {}
        self.stats = CacheGenieStats()
        self._custom_cache_classes: Dict[str, type] = {}
        self._activated = False
        #: Commit-time trigger-op batching: trigger-side cache operations
        #: enqueue here (coalescing per key) and flush as multi-key batches
        #: when the surrounding database transaction commits.
        self.batch_trigger_ops = batch_trigger_ops
        self.trigger_op_queue: Optional[TriggerOpQueue] = None
        if batch_trigger_ops:
            self.trigger_op_queue = TriggerOpQueue(self.trigger_cache)
            self.db.transactions.on_commit.append(self.trigger_op_queue.flush)
            self.db.transactions.on_abort.append(self.trigger_op_queue.discard)

    # -- lifecycle --------------------------------------------------------------

    def activate(self) -> "CacheGenie":
        """Register the interceptor with the ORM registry (idempotent)."""
        if not self._activated:
            self.registry.add_interceptor(self.interceptor)
            self._activated = True
        _set_active_genie(self)
        return self

    def deactivate(self) -> None:
        """Unregister the interceptor and drop all generated triggers."""
        if self._activated:
            self.registry.remove_interceptor(self.interceptor)
            self._activated = False
        for cached_object in list(self.cached_objects.values()):
            self.remove_cached_object(cached_object.name)
        if self.trigger_op_queue is not None:
            self.trigger_op_queue.discard()
            hooks = self.db.transactions
            if self.trigger_op_queue.flush in hooks.on_commit:
                hooks.on_commit.remove(self.trigger_op_queue.flush)
            if self.trigger_op_queue.discard in hooks.on_abort:
                hooks.on_abort.remove(self.trigger_op_queue.discard)
            self.trigger_op_queue = None
        if _active_genie() is self:
            _set_active_genie(None)

    # -- cache class registration -------------------------------------------------

    def register_cache_class(self, cache_class: type) -> None:
        """Register a custom cache class (the paper's extensibility story)."""
        if not issubclass(cache_class, CacheClass):
            raise CacheClassError(
                f"{cache_class!r} does not subclass CacheClass"
            )
        self._custom_cache_classes[cache_class.cache_class_type] = cache_class

    def _resolve_cache_class(self, type_name: str) -> type:
        if type_name in self._custom_cache_classes:
            return self._custom_cache_classes[type_name]
        if type_name in BUILTIN_CACHE_CLASSES:
            return BUILTIN_CACHE_CLASSES[type_name]
        raise CacheClassError(
            f"unknown cache_class_type {type_name!r}; known types: "
            f"{sorted(set(BUILTIN_CACHE_CLASSES) | set(self._custom_cache_classes))}"
        )

    # -- the cacheable() API --------------------------------------------------------

    def cacheable(
        self,
        cache_class_type: str,
        main_model: Union[str, type],
        where_fields: Sequence[str],
        name: Optional[str] = None,
        update_strategy: Optional[str] = None,
        use_transparently: bool = True,
        expiry_seconds: Optional[float] = None,
        **params: Any,
    ) -> CacheClass:
        """Declare a cached object (the paper's ``cacheable(...)`` call).

        Returns the cached-object instance, whose ``evaluate(**where_values)``
        method can be used for explicit lookups when transparency is off.
        """
        if not self._activated:
            self.activate()
        model = (self.registry.get_model(main_model)
                 if isinstance(main_model, str) else main_model)
        cache_class = self._resolve_cache_class(cache_class_type)
        object_name = name or self._default_name(cache_class_type, model, where_fields)
        if object_name in self.cached_objects:
            raise CacheClassError(f"cached object {object_name!r} already defined")
        cached_object = cache_class(
            name=object_name,
            genie=self,
            main_model=model,
            where_fields=list(where_fields),
            update_strategy=update_strategy or self.default_strategy,
            use_transparently=use_transparently,
            expiry_seconds=expiry_seconds,
            **params,
        )
        self.cached_objects[object_name] = cached_object
        self.stats.per_object[object_name] = cached_object.stats
        self.trigger_generator.install_for(cached_object)
        self.interceptor.register(cached_object)
        return cached_object

    def _default_name(self, cache_class_type: str, model: type,
                      where_fields: Sequence[str]) -> str:
        return f"{cache_class_type.lower()}_{model.__name__.lower()}_by_" + \
            "_".join(where_fields)

    def remove_cached_object(self, name: str) -> None:
        """Drop a cached object, its triggers, and its interception."""
        cached_object = self.cached_objects.pop(name, None)
        if cached_object is None:
            raise CacheClassError(f"no cached object named {name!r}")
        self.trigger_generator.uninstall_for(cached_object)
        self.interceptor.unregister(cached_object)

    def get_cached_object(self, name: str) -> CacheClass:
        try:
            return self.cached_objects[name]
        except KeyError:
            raise CacheClassError(f"no cached object named {name!r}") from None

    # -- introspection / metrics -------------------------------------------------------

    @property
    def cached_object_count(self) -> int:
        return len(self.cached_objects)

    @property
    def trigger_count(self) -> int:
        return self.trigger_generator.trigger_count

    @property
    def generated_trigger_lines(self) -> int:
        return self.trigger_generator.generated_line_count

    def effort_report(self) -> Dict[str, int]:
        """Programmer-effort metrics matching §5.2 of the paper."""
        return {
            "cached_objects": self.cached_object_count,
            "generated_triggers": self.trigger_count,
            "generated_trigger_lines": self.generated_trigger_lines,
        }

    def cache_hit_ratio(self) -> float:
        totals = self.stats.totals()
        return totals.hit_ratio

    def flush_cache(self) -> None:
        """Empty every cache server (used between experiment runs)."""
        self.app_cache.flush_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheGenie {self.cached_object_count} cached objects, "
            f"{self.trigger_count} triggers>"
        )


# -- module-level cacheable(), like the paper's free function -----------------------

_ACTIVE_GENIE: Optional[CacheGenie] = None


def _set_active_genie(genie: Optional[CacheGenie]) -> None:
    global _ACTIVE_GENIE
    _ACTIVE_GENIE = genie


def _active_genie() -> Optional[CacheGenie]:
    return _ACTIVE_GENIE


def cacheable(**kwargs: Any) -> CacheClass:
    """Declare a cached object on the currently active CacheGenie instance.

    Mirrors the paper's usage::

        cached_user_profile = cacheable(cache_class_type='FeatureQuery',
                                        main_model='Profile',
                                        where_fields=['user_id'])
    """
    genie = _active_genie()
    if genie is None:
        raise CacheClassError(
            "no active CacheGenie instance; create one and call activate() first"
        )
    return genie.cacheable(**kwargs)
