"""The CacheGenie orchestrator.

A :class:`CacheGenie` instance wires together one ORM registry, its database,
and a set of memcached servers.  Programmers declare cached objects through
:meth:`cacheable`; CacheGenie then

* builds the cache-class instance (query generation),
* generates and installs the database triggers (trigger generation), and
* registers the object with the ORM interceptor (transparent evaluation).

The primary declaration form is **queryset-native**: pass the ORM query you
already write, with :class:`~repro.orm.template.Param` placeholders marking
the per-entry parameters, and the cache class is inferred from the query's
shape::

    genie.cacheable(Profile.objects.filter(user_id=Param("user_id")))   # FeatureQuery
    genie.cacheable(Friendship.objects.filter(
        from_user_id=Param("u")).count())                               # CountQuery
    genie.cacheable(WallPost.objects.filter(
        user_id=Param("u")).order_by("-date_posted")[:20])              # TopKQuery
    genie.cacheable(Friendship.objects.filter(
        from_user_id=Param("u")).through("to_user"))                    # LinkQuery

The paper's original keyword form
(``cacheable(cache_class_type=..., main_model=..., where_fields=...)``)
remains as a thin adapter that builds the same :class:`QueryTemplate`
internally; its use is tallied as a deprecation-style note in
:meth:`CacheGenie.effort_report`.

The module-level :func:`cacheable` mirrors the paper's free function: it
forwards to the currently activated CacheGenie instance.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import CacheClassError
from ..memcache.client import CacheClient
from ..memcache.server import CacheServer
from ..orm.queryset import QuerySet
from ..orm.registry import Registry
from ..orm.template import QueryTemplate
from ..storage.database import Database
from .cache_classes import BUILTIN_CACHE_CLASSES, CacheClass
from .interception import CacheGenieInterceptor
from .refresh import RefreshQueue
from .stats import CacheGenieStats, DeclarationInfo
from .strategies import UPDATE_IN_PLACE, resolve_strategy
from .trigger_queue import TriggerOpQueue
from .triggergen import TriggerGenerator


#: Keywords that define a query's shape.  In the queryset-native form they
#: are inferred from the queryset and may not be overridden per-object.
_SHAPE_KEYWORDS = frozenset({
    "cache_class_type", "main_model", "where_fields",   # legacy-form keys
    "k", "sort_field", "sort_order",                    # TopKQuery shape
    "chain", "order_by", "descending", "limit",         # LinkQuery shape
    "const_filters",                                    # constant equality filters
})


class CacheGenie:
    """The caching middleware: declarative cached objects over ORM + DB + cache."""

    def __init__(
        self,
        registry: Registry,
        database: Optional[Database] = None,
        cache_servers: Optional[Sequence[CacheServer]] = None,
        default_strategy: Any = UPDATE_IN_PLACE,
        reuse_trigger_connections: bool = False,
        batch_trigger_ops: bool = True,
        pipeline_batches: bool = True,
        cache_address: str = "cache-host:11211",
        refresh_delay_seconds: float = 0.0,
    ) -> None:
        self.registry = registry
        self.db = database or registry.db
        self.recorder = self.db.recorder
        if cache_servers is None:
            cache_servers = [CacheServer("cache0")]
        self.cache_servers = list(cache_servers)
        self.cache_address = cache_address
        #: Default consistency policy, resolved through the strategy registry
        #: (a registered name or a ConsistencyStrategy instance).
        self.default_strategy = resolve_strategy(default_strategy)
        self.pipeline_batches = pipeline_batches
        #: Client used by the application (and by evaluate()).
        self.app_cache = CacheClient(self.cache_servers, recorder=self.recorder,
                                     pipeline_batches=pipeline_batches)
        #: Client used from inside triggers; charges trigger-side costs.
        self.trigger_cache = CacheClient(
            self.cache_servers, recorder=self.recorder,
            from_trigger=True, reuse_connections=reuse_trigger_connections,
            pipeline_batches=pipeline_batches)
        self.interceptor = CacheGenieInterceptor()
        self.trigger_generator = TriggerGenerator(self)
        self.cached_objects: Dict[str, CacheClass] = {}
        self.stats = CacheGenieStats()
        self._custom_cache_classes: Dict[str, type] = {}
        #: shape fingerprint -> cached-object name, for duplicate detection.
        self._shapes: Dict[str, str] = {}
        self._activated = False
        #: Commit-time trigger-op batching (the default since the committed
        #: `--batch-ops` baseline): trigger-side cache operations enqueue
        #: here (coalescing per key) and flush as gets_multi/cas_multi/
        #: delete_multi batches when the database transaction commits.
        #: Pass ``batch_trigger_ops=False`` for the paper's original eager
        #: per-operation trigger propagation.
        self.batch_trigger_ops = batch_trigger_ops
        self.trigger_op_queue: Optional[TriggerOpQueue] = None
        if batch_trigger_ops:
            self.trigger_op_queue = TriggerOpQueue(self.trigger_cache)
            self.db.transactions.on_commit.append(self.trigger_op_queue.flush)
            self.db.transactions.on_abort.append(self.trigger_op_queue.discard)
        #: Background refresh worker for the stale-serving strategies
        #: (leased invalidation, async-refresh): stale reads schedule one
        #: recompute per key here, drained on subsequent cache activity.
        self.refresh_queue = RefreshQueue(clock=self.now,
                                          delay_seconds=refresh_delay_seconds)

    # -- clock / background refresh ----------------------------------------------

    def now(self) -> float:
        """Virtual time in seconds, read from the cache servers' clock."""
        return self.cache_servers[0].clock()

    def schedule_refresh(self, cached_object: CacheClass, key: str,
                         params: Dict[str, Any]) -> bool:
        """Queue one background recompute of ``key`` (deduplicated per key)."""
        return self.refresh_queue.schedule(cached_object, key, params)

    def run_pending_refreshes(self) -> int:
        """Drain due background refreshes (called on every read path entry)."""
        return self.refresh_queue.drain(self.now())

    # -- lifecycle --------------------------------------------------------------

    def activate(self) -> "CacheGenie":
        """Register the interceptor with the ORM registry (idempotent)."""
        if not self._activated:
            self.registry.add_interceptor(self.interceptor)
            self._activated = True
        _set_active_genie(self)
        return self

    def deactivate(self) -> None:
        """Unregister the interceptor and drop all generated triggers."""
        if self._activated:
            self.registry.remove_interceptor(self.interceptor)
            self._activated = False
        for cached_object in list(self.cached_objects.values()):
            self.remove_cached_object(cached_object.name)
        self.refresh_queue.discard()
        if self.trigger_op_queue is not None:
            self.trigger_op_queue.discard()
            hooks = self.db.transactions
            if self.trigger_op_queue.flush in hooks.on_commit:
                hooks.on_commit.remove(self.trigger_op_queue.flush)
            if self.trigger_op_queue.discard in hooks.on_abort:
                hooks.on_abort.remove(self.trigger_op_queue.discard)
            self.trigger_op_queue = None
        if _active_genie() is self:
            _set_active_genie(None)

    # -- cache class registration -------------------------------------------------

    def register_cache_class(self, cache_class: type) -> None:
        """Register a custom cache class (the paper's extensibility story)."""
        if not issubclass(cache_class, CacheClass):
            raise CacheClassError(
                f"{cache_class!r} does not subclass CacheClass"
            )
        self._custom_cache_classes[cache_class.cache_class_type] = cache_class

    def _resolve_cache_class(self, type_name: str) -> type:
        if type_name in self._custom_cache_classes:
            return self._custom_cache_classes[type_name]
        if type_name in BUILTIN_CACHE_CLASSES:
            return BUILTIN_CACHE_CLASSES[type_name]
        raise CacheClassError(
            f"unknown cache_class_type {type_name!r}; known types: "
            f"{sorted(set(BUILTIN_CACHE_CLASSES) | set(self._custom_cache_classes))}"
        )

    # -- the cacheable() API --------------------------------------------------------

    def cacheable(self, query: Any = None, *legacy_args: Any,
                  **kwargs: Any) -> CacheClass:
        """Declare a cached object.

        Two forms are accepted:

        * **Queryset-native** (preferred) — pass a queryset template (or the
          :class:`QueryTemplate` a template's ``.count()`` returns) whose
          ``Param(...)`` placeholders become the per-entry parameters; the
          cache class is inferred from the query shape::

              genie.cacheable(Profile.objects.filter(user_id=Param("user_id")))

        * **Legacy keywords** — the paper's original stringly-typed call
          (``cache_class_type=..., main_model=..., where_fields=[...]``),
          kept as a thin adapter over the same template machinery; counted
          as deprecated in :meth:`effort_report`.

        Returns the cached-object instance, whose ``evaluate(**where_values)``
        method can be used for explicit lookups when transparency is off.
        """
        if isinstance(query, str) or (query is None and "cache_class_type" in kwargs):
            # Legacy form; positional use was cacheable(type, model, fields[, name]).
            positional = ("main_model", "where_fields", "name")
            if len(legacy_args) > len(positional):
                raise CacheClassError(
                    "too many positional arguments for the legacy cacheable() "
                    "form; options beyond name are keyword-only")
            if query is not None:
                kwargs["cache_class_type"] = query
            for value, key in zip(legacy_args, positional):
                kwargs[key] = value
            return self._cacheable_legacy(**kwargs)
        if legacy_args:
            raise CacheClassError(
                "cacheable() takes a single queryset template; per-object "
                "options are keyword-only")
        if query is None:
            raise CacheClassError(
                "cacheable() needs a queryset template (or, for the legacy "
                "form, cache_class_type=/main_model=/where_fields= keywords)")
        return self._cacheable_from_query(query, **kwargs)

    def _cacheable_from_query(
        self,
        query: Union[QuerySet, QueryTemplate],
        name: Optional[str] = None,
        update_strategy: Optional[str] = None,
        use_transparently: bool = True,
        expiry_seconds: Optional[float] = None,
        **params: Any,
    ) -> CacheClass:
        """The queryset-native declaration path: normalize, infer, install."""
        if isinstance(query, QuerySet):
            template = QueryTemplate.from_queryset(query)
        elif isinstance(query, QueryTemplate):
            template = query
        else:
            raise CacheClassError(
                f"cacheable() expected a QuerySet template or QueryTemplate, "
                f"got {type(query).__name__}")
        # Shape-defining options come from the queryset itself; letting a
        # keyword override them would desync the constructed object from the
        # template that interception matches against (e.g. a k=10 object
        # behind a limit=20 template would silently truncate results).
        forbidden = _SHAPE_KEYWORDS.intersection(params)
        if forbidden:
            raise CacheClassError(
                f"option(s) {sorted(forbidden)} are derived from the queryset "
                f"shape; express them in the queryset (filter/order_by/slice/"
                f"through/count) instead of overriding them")
        type_name, inferred_params = template.infer_cache_class()
        inferred_params.update(params)  # shape-neutral options (e.g. reserve=)
        if template.const_filters:
            inferred_params["const_filters"] = dict(template.const_filters)
        return self._install(
            cache_class=self._resolve_cache_class(type_name),
            model=template.model,
            where_fields=list(template.param_fields),
            name=name,
            update_strategy=update_strategy,
            use_transparently=use_transparently,
            expiry_seconds=expiry_seconds,
            template=template,
            declared_api=DeclarationInfo.QUERYSET,
            params=inferred_params,
        )

    def _cacheable_legacy(
        self,
        cache_class_type: str,
        main_model: Union[str, type],
        where_fields: Sequence[str],
        name: Optional[str] = None,
        update_strategy: Optional[str] = None,
        use_transparently: bool = True,
        expiry_seconds: Optional[float] = None,
        **params: Any,
    ) -> CacheClass:
        """The paper's keyword form: a thin adapter over the template path.

        The cache class is named explicitly instead of inferred; the object
        derives its :class:`QueryTemplate` from those keywords, so matching
        and duplicate detection behave identically to the queryset form.
        """
        model = (self.registry.get_model(main_model)
                 if isinstance(main_model, str) else main_model)
        return self._install(
            cache_class=self._resolve_cache_class(cache_class_type),
            model=model,
            where_fields=list(where_fields),
            name=name,
            update_strategy=update_strategy,
            use_transparently=use_transparently,
            expiry_seconds=expiry_seconds,
            template=None,  # derived by the cache class from its parameters
            declared_api=DeclarationInfo.KEYWORDS,
            params=dict(params),
        )

    def _install(self, cache_class: type, model: type, where_fields: List[str],
                 name: Optional[str], update_strategy: Optional[str],
                 use_transparently: bool, expiry_seconds: Optional[float],
                 template: Optional[QueryTemplate], declared_api: str,
                 params: Dict[str, Any]) -> CacheClass:
        """Shared tail of both declaration paths: build, check, install."""
        if not self._activated:
            self.activate()
        object_name = name or self._default_name(
            cache_class.cache_class_type, model, where_fields)
        if object_name in self.cached_objects:
            raise CacheClassError(f"cached object {object_name!r} already defined")
        cached_object = cache_class(
            name=object_name,
            genie=self,
            main_model=model,
            where_fields=where_fields,
            update_strategy=update_strategy or self.default_strategy,
            use_transparently=use_transparently,
            expiry_seconds=expiry_seconds,
            template=template,
            **params,
        )
        shape = cached_object.template.shape_fingerprint()
        existing = self._shapes.get(shape)
        if existing is not None:
            raise CacheClassError(
                f"cached objects {existing!r} and {object_name!r} declare the "
                f"same query shape [{shape}]; a second declaration would only "
                f"install redundant triggers (the first-registered object "
                f"serves all matching queries)")
        self.cached_objects[object_name] = cached_object
        self.stats.per_object[object_name] = cached_object.stats
        self.stats.declarations[object_name] = DeclarationInfo(
            api=declared_api,
            cache_class=cache_class.cache_class_type,
            inferred=declared_api == DeclarationInfo.QUERYSET,
            shape=shape,
        )
        self._shapes[shape] = object_name
        self.trigger_generator.install_for(cached_object)
        self.interceptor.register(cached_object)
        return cached_object

    def _default_name(self, cache_class_type: str, model: type,
                      where_fields: Sequence[str]) -> str:
        return f"{cache_class_type.lower()}_{model.__name__.lower()}_by_" + \
            "_".join(where_fields)

    def remove_cached_object(self, name: str) -> None:
        """Drop a cached object, its triggers, its interception, and its stats."""
        cached_object = self.cached_objects.pop(name, None)
        if cached_object is None:
            raise CacheClassError(f"no cached object named {name!r}")
        # Per-object accounting must go with the object, or totals() and
        # effort_report() keep counting work for objects that no longer exist.
        self.stats.per_object.pop(name, None)
        self.stats.declarations.pop(name, None)
        # Pending background refreshes too: a refresh outliving its object
        # would recompute a dead query and repopulate a trigger-less key.
        self.refresh_queue.discard_for(cached_object)
        shape = cached_object.template.shape_fingerprint()
        if self._shapes.get(shape) == name:
            del self._shapes[shape]
        self.trigger_generator.uninstall_for(cached_object)
        self.interceptor.unregister(cached_object)

    def get_cached_object(self, name: str) -> CacheClass:
        try:
            return self.cached_objects[name]
        except KeyError:
            raise CacheClassError(f"no cached object named {name!r}") from None

    # -- introspection / metrics -------------------------------------------------------

    @property
    def cached_object_count(self) -> int:
        return len(self.cached_objects)

    @property
    def trigger_count(self) -> int:
        return self.trigger_generator.trigger_count

    @property
    def generated_trigger_lines(self) -> int:
        return self.trigger_generator.generated_line_count

    def effort_report(self) -> Dict[str, Any]:
        """Programmer-effort metrics matching §5.2 of the paper.

        Alongside the paper's counters, reports how each object was declared;
        legacy keyword declarations produce a deprecation-style note nudging
        toward the queryset-native form.
        """
        counts = self.stats.declaration_counts()
        legacy = counts.get(DeclarationInfo.KEYWORDS, 0)
        report: Dict[str, Any] = {
            "cached_objects": self.cached_object_count,
            "generated_triggers": self.trigger_count,
            "generated_trigger_lines": self.generated_trigger_lines,
            "queryset_declarations": counts.get(DeclarationInfo.QUERYSET, 0),
            "legacy_keyword_declarations": legacy,
        }
        if legacy:
            report["notes"] = [
                f"{legacy} cached object(s) use the deprecated keyword form "
                f"cacheable(cache_class_type=...); declare them from a "
                f"queryset template (cacheable(Model.objects.filter("
                f"field=Param(...)))) to get shape checking and inference"
            ]
        return report

    def declaration_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-object declared-vs-inferred metadata (api, cache class, shape)."""
        return {name: info.as_dict()
                for name, info in self.stats.declarations.items()}

    def cache_hit_ratio(self) -> float:
        totals = self.stats.totals()
        return totals.hit_ratio

    def flush_cache(self) -> None:
        """Empty every cache server (used between experiment runs)."""
        self.app_cache.flush_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheGenie {self.cached_object_count} cached objects, "
            f"{self.trigger_count} triggers>"
        )


# -- module-level cacheable(), like the paper's free function -----------------------

_ACTIVE_GENIE: Optional[CacheGenie] = None


def _set_active_genie(genie: Optional[CacheGenie]) -> None:
    global _ACTIVE_GENIE
    _ACTIVE_GENIE = genie


def _active_genie() -> Optional[CacheGenie]:
    return _ACTIVE_GENIE


def cacheable(*args: Any, **kwargs: Any) -> CacheClass:
    """Declare a cached object on the currently active CacheGenie instance.

    The queryset-native form mirrors how the object will be queried::

        cached_user_profile = cacheable(
            Profile.objects.filter(user_id=Param("user_id")))

    The paper's legacy keyword form is also accepted::

        cached_user_profile = cacheable(cache_class_type='FeatureQuery',
                                        main_model='Profile',
                                        where_fields=['user_id'])
    """
    genie = _active_genie()
    if genie is None:
        raise CacheClassError(
            "no active CacheGenie instance; create one and call activate() first"
        )
    return genie.cacheable(*args, **kwargs)
