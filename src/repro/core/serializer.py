"""Value (de)serialization between CacheGenie and the cache.

Real memcached stores opaque bytes, which naturally decouples cached values
from live application objects.  Our in-process cache stores Python objects,
so CacheGenie defensively copies values on the way in and out — otherwise a
caller mutating a returned row list would silently corrupt the cache.

Row dictionaries are also *normalized*: the paper caches "the raw results of
queries and not Django model objects", so values are plain dicts / ints /
lists that any consumer can reconstruct model instances from.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Sequence

#: Immutable scalar types for which a shallow dict copy *is* a deep copy.
_ATOMIC_TYPES = (str, int, float, bool, bytes, type(None))

#: Compiled-trace fast path (see :mod:`repro.core.fastpath`): when enabled,
#: rows whose values are all immutable scalars are copied with a shallow
#: ``dict()`` instead of ``copy.deepcopy`` — byte-identical output (deep
#: copying an immutable scalar returns the scalar), the defensive-copy
#: guarantee intact (the dict itself is still fresh), only faster.  Rows
#: holding any container value fall back to the deep copy.
_fast_copy = False


def enable_fast_copy() -> None:
    global _fast_copy
    _fast_copy = True


def disable_fast_copy() -> None:
    global _fast_copy
    _fast_copy = False


def _copy_row(row: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(row)
    if _fast_copy:
        for value in out.values():
            if not isinstance(value, _ATOMIC_TYPES):
                return copy.deepcopy(out)
        return out
    return copy.deepcopy(out)


def freeze_rows(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Deep-copy a list of row dicts for storage in the cache."""
    return [_copy_row(row) for row in rows]


def thaw_rows(value: Any) -> List[Dict[str, Any]]:
    """Deep-copy a cached list of row dicts for return to the application."""
    if value is None:
        return []
    return [_copy_row(row) for row in value]


def freeze_value(value: Any) -> Any:
    """Deep-copy an arbitrary cached value (counts are immutable ints)."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return copy.deepcopy(value)
