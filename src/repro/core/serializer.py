"""Value (de)serialization between CacheGenie and the cache.

Real memcached stores opaque bytes, which naturally decouples cached values
from live application objects.  Our in-process cache stores Python objects,
so CacheGenie defensively copies values on the way in and out — otherwise a
caller mutating a returned row list would silently corrupt the cache.

Row dictionaries are also *normalized*: the paper caches "the raw results of
queries and not Django model objects", so values are plain dicts / ints /
lists that any consumer can reconstruct model instances from.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Sequence


def freeze_rows(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Deep-copy a list of row dicts for storage in the cache."""
    return [copy.deepcopy(dict(row)) for row in rows]


def thaw_rows(value: Any) -> List[Dict[str, Any]]:
    """Deep-copy a cached list of row dicts for return to the application."""
    if value is None:
        return []
    return [copy.deepcopy(dict(row)) for row in value]


def freeze_value(value: Any) -> Any:
    """Deep-copy an arbitrary cached value (counts are immutable ints)."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return copy.deepcopy(value)
