"""Transparent ORM query interception.

CacheGenie "operates as a layer underneath the application, modifying the
queries issued by the ORM system to the database, redirecting them to the
cache when possible" (§2).  The interceptor registered on the ORM registry
receives a normalized description of each simple query; if a cached object
with ``use_transparently=True`` matches, the query is served through that
object's ``evaluate`` path (cache hit, or database fallback that repopulates
the cache) without the application changing a line of code.

Compiled-trace replays enable a **shape memo**: the value-independent half of
template matching (:meth:`~repro.orm.template.QueryTemplate.match_shape`)
depends only on a query description's shape — table, kind, filter-key set,
ordering, limit, offset — so the interceptor caches, per shape, the ordered
list of cached objects that pass it.  Per call only the value-dependent half
(:meth:`~repro.orm.template.QueryTemplate.bind`) and the
``use_transparently`` flag are evaluated, preserving the uncompiled path's
exact semantics (both halves together *are* ``match``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..orm.registry import QueryInterceptor

if TYPE_CHECKING:  # pragma: no cover
    from ..orm.queryset import QueryDescription
    from .cache_classes.base import CacheClass

#: Shape-memo entry: the cached object plus whether its template verdict is
#: known shape-true (False means "unknown — fall back to obj.matches()").
_MemoEntry = Tuple["CacheClass", bool]


class CacheGenieInterceptor(QueryInterceptor):
    """Serves matching ORM queries from cached objects."""

    def __init__(self) -> None:
        self._cached_objects: List["CacheClass"] = []
        #: Shape-key -> ordered shape-passing objects; None = memo disabled
        #: (the default — only compiled-trace replays switch it on).
        self._match_cache: Optional[Dict[tuple, List[_MemoEntry]]] = None

    def register(self, cached_object: "CacheClass") -> None:
        self._cached_objects.append(cached_object)
        if self._match_cache:
            self._match_cache.clear()

    def unregister(self, cached_object: "CacheClass") -> None:
        if cached_object in self._cached_objects:
            self._cached_objects.remove(cached_object)
            if self._match_cache:
                self._match_cache.clear()

    def clear(self) -> None:
        self._cached_objects.clear()
        if self._match_cache:
            self._match_cache.clear()

    @property
    def cached_objects(self) -> List["CacheClass"]:
        return list(self._cached_objects)

    # -- shape memo -------------------------------------------------------------

    def enable_match_cache(self) -> None:
        """Turn on the per-shape match memo (compiled-trace fast path)."""
        if self._match_cache is None:
            self._match_cache = {}

    def disable_match_cache(self) -> None:
        """Drop the memo and return to plain per-call matching."""
        self._match_cache = None

    def _shape_candidates(self, description: "QueryDescription") -> List[_MemoEntry]:
        """The registered objects whose template shape admits ``description``,
        in registration order, computed once per distinct shape."""
        key = (description.table, description.kind,
               frozenset(description.filters),
               tuple(description.order_by),
               description.limit, description.offset)
        entries = self._match_cache.get(key)
        if entries is None:
            entries = []
            for cached_object in self._cached_objects:
                try:
                    if cached_object.template.match_shape(description):
                        entries.append((cached_object, True))
                except Exception:
                    # An object without the template protocol: keep it with
                    # an unknown verdict so the per-call fallback still asks
                    # its matches() exactly like the unmemoized path.
                    entries.append((cached_object, False))
            self._match_cache[key] = entries
        return entries

    # -- the interception -------------------------------------------------------

    def try_fetch(self, description: "QueryDescription") -> Tuple[bool, Any]:
        """Offer the query to each transparently-usable cached object."""
        if self._match_cache is None:
            for cached_object in self._cached_objects:
                if not cached_object.use_transparently:
                    continue
                params = cached_object.matches(description)
                if params is None:
                    continue
                value = cached_object.evaluate(**params)
                cached_object.stats.transparent_fetches += 1
                return True, cached_object.result_for_application(value, description)
            return False, None
        # Memoized path: same verdicts, shape checks amortized per shape.
        for cached_object, shape_known in self._shape_candidates(description):
            if not cached_object.use_transparently:
                continue
            if shape_known:
                params = cached_object.template.bind(description)
            else:
                params = cached_object.matches(description)
            if params is None:
                continue
            value = cached_object.evaluate(**params)
            cached_object.stats.transparent_fetches += 1
            return True, cached_object.result_for_application(value, description)
        return False, None
