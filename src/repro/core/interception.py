"""Transparent ORM query interception.

CacheGenie "operates as a layer underneath the application, modifying the
queries issued by the ORM system to the database, redirecting them to the
cache when possible" (§2).  The interceptor registered on the ORM registry
receives a normalized description of each simple query; if a cached object
with ``use_transparently=True`` matches, the query is served through that
object's ``evaluate`` path (cache hit, or database fallback that repopulates
the cache) without the application changing a line of code.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple, TYPE_CHECKING

from ..orm.registry import QueryInterceptor

if TYPE_CHECKING:  # pragma: no cover
    from ..orm.queryset import QueryDescription
    from .cache_classes.base import CacheClass


class CacheGenieInterceptor(QueryInterceptor):
    """Serves matching ORM queries from cached objects."""

    def __init__(self) -> None:
        self._cached_objects: List["CacheClass"] = []

    def register(self, cached_object: "CacheClass") -> None:
        self._cached_objects.append(cached_object)

    def unregister(self, cached_object: "CacheClass") -> None:
        if cached_object in self._cached_objects:
            self._cached_objects.remove(cached_object)

    def clear(self) -> None:
        self._cached_objects.clear()

    @property
    def cached_objects(self) -> List["CacheClass"]:
        return list(self._cached_objects)

    def try_fetch(self, description: "QueryDescription") -> Tuple[bool, Any]:
        """Offer the query to each transparently-usable cached object."""
        for cached_object in self._cached_objects:
            if not cached_object.use_transparently:
                continue
            params = cached_object.matches(description)
            if params is None:
                continue
            value = cached_object.evaluate(**params)
            cached_object.stats.transparent_fetches += 1
            return True, cached_object.result_for_application(value, description)
        return False, None
