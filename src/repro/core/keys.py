"""Cache-key construction.

Every cached object owns a key prefix; individual entries append the values
of the object's ``where_fields``.  The paper notes that illustrative prefixes
like ``LatestWallPostsOfUser:42`` are replaced by system-generated unique
prefixes in practice — we do the same: a short digest of the cached-object
definition guards against collisions between objects with similar names,
while remaining deterministic across runs.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Sequence

_SAFE_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-")


def _encode_component(value: Any) -> str:
    """Encode one key component so it is memcached-safe."""
    text = repr(value) if not isinstance(value, str) else value
    if all(ch in _SAFE_CHARS for ch in text) and len(text) <= 48:
        return text
    digest = hashlib.md5(text.encode("utf-8")).hexdigest()[:16]
    return f"h{digest}"


class KeyScheme:
    """Key naming scheme for one cached object."""

    def __init__(self, object_name: str, definition_fingerprint: str) -> None:
        digest = hashlib.md5(definition_fingerprint.encode("utf-8")).hexdigest()[:8]
        self.prefix = f"cg:{_encode_component(object_name)}:{digest}"
        #: value-tuple -> built key memo; None = disabled (the default —
        #: compiled-trace replays switch it on).  Key building is a pure
        #: function of the values, so memoizing cannot change any key.
        self._memo: "Dict[tuple, str] | None" = None

    def enable_memo(self) -> None:
        self._memo = {}

    def disable_memo(self) -> None:
        self._memo = None

    def key_for(self, values: Sequence[Any]) -> str:
        """Build the cache key for one combination of where-field values."""
        memo = self._memo
        if memo is not None:
            try:
                cache_key = tuple(values)
                built = memo.get(cache_key)
                if built is None:
                    built = self._build(values)
                    memo[cache_key] = built
                return built
            except TypeError:
                return self._build(values)  # unhashable value: skip the memo
        return self._build(values)

    def _build(self, values: Sequence[Any]) -> str:
        parts = [self.prefix]
        parts.extend(_encode_component(v) for v in values)
        return ":".join(parts)

    def key_for_mapping(self, where_fields: Sequence[str], mapping: Dict[str, Any]) -> str:
        """Build the cache key from a ``{column: value}`` mapping."""
        return self.key_for([mapping[f] for f in where_fields])


def fingerprint(*parts: Any) -> str:
    """Build a stable fingerprint string from definition parameters."""
    return "|".join(str(p) for p in parts)
