"""Commit-time coalescing of trigger-side cache operations.

The paper's §5.3 overhead analysis shows that per-operation cache round trips
dominate trigger cost: every row a transaction touches fires its triggers'
cache operations independently, so a 50-row update pays 50 round trips even
when they all land on the same handful of keys.  The :class:`TriggerOpQueue`
is the middleware answer: trigger-side operations *enqueue* instead of
executing, duplicate operations against the same key coalesce, and the queue
flushes as batched multi-key operations when the surrounding database
transaction commits (aborts simply discard the queue — the cache was never
touched, so there is nothing to undo, an improvement over the eager path's
transiently dirty entries).

Deferral also amortizes the trigger-side connection: however many triggers
fired during the transaction, the flush opens (at most) one memcached
connection, realizing the paper's connection-reuse future work as a side
effect of batching.

Two operation kinds cover every generated trigger body:

* ``delete`` — invalidation; wins over any pending mutation of the key.
* ``mutate`` — a read-modify-write (incremental update, count bump, or
  recomputation).  Mutations against the same key chain in order and are
  applied to a single batched read at flush; if the key is not cached the
  whole chain quits, exactly like the eager gets/cas path.

The flush propagates mutations with the *batched CAS protocol*:
``gets_multi`` reads every pending key with its CAS token (one round trip
per server), the mutation chains run in memory, and ``cas_multi`` writes the
results back conditionally (again one round trip per server).  Per-key
verdicts mean a stale token loses only its own key: the flush re-reads and
retries just the losers, up to :data:`FLUSH_CAS_MAX_RETRIES` rounds, then
falls back to invalidating whatever still cannot win — the same safety net
as the eager path's per-key CAS loop.  Within one database (one writer) the
tokens never go stale and the flush costs exactly one gets_multi/cas_multi
pair; under concurrent writers the CAS keeps lost-update anomalies out of
the cache at the cost of the occasional retry round.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (Any, Callable, Dict, FrozenSet, List,  # noqa: F401
                    Optional, Tuple)

from ..memcache.server import CAS_MISMATCH, CAS_STORED, CAS_TOO_LARGE
from .strategies import _FRESH_UNTIL_KEY

#: Mutation: current cached value -> new value, or None to leave it untouched.
MutateFn = Callable[[Any], Optional[Any]]

#: Bounded CAS retry rounds per flush before falling back to invalidation,
#: matching the eager trigger path's per-key retry bound.
FLUSH_CAS_MAX_RETRIES = 5


class _PendingOp:
    """The coalesced pending operation for one cache key."""

    __slots__ = ("kind", "owner", "mutations", "counter", "expire")

    def __init__(self, kind: str, owner: Any, counter: str = "updates_applied",
                 expire: Optional[float] = None) -> None:
        self.kind = kind                     # "delete" | "mutate"
        self.owner = owner                   # the CacheClass for stats credit
        self.mutations: List[MutateFn] = []
        self.counter = counter               # stat bumped when a write lands
        self.expire = expire


class TriggerOpQueue:
    """Per-transaction queue of trigger-side cache operations.

    Ops enqueue during the transaction (keyed by cache key, coalescing
    duplicates) and flush as ``gets_multi``/``cas_multi``/``delete_multi``
    batches at commit.  :meth:`discard` drops everything on abort.
    """

    def __init__(self, cache_client: Any,
                 cas_max_retries: int = FLUSH_CAS_MAX_RETRIES) -> None:
        self.cache = cache_client
        self.cas_max_retries = cas_max_retries
        self._ops: "OrderedDict[str, _PendingOp]" = OrderedDict()
        self._flushing = False
        #: Parked (ops, flushing) state of inactive worker contexts.  Each
        #: concurrent worker's transaction owns its own pending-op space —
        #: ops enqueued by worker A's transaction flush at A's commit and
        #: never mix with B's — and a flush suspended at a yield point
        #: stays "flushing" only for its own context.
        self._contexts: Dict[Any, Tuple["OrderedDict[str, _PendingOp]", bool]] = {}
        self._context_key: Any = None
        #: Cached ``pending_keys_for`` frozensets per context key.  The
        #: key-overlap policy asks for every paused worker's pending keys at
        #: every scheduling step; a parked context cannot change, and the
        #: live one invalidates its entry whenever its key set changes.
        self._pending_frozen: Dict[Any, FrozenSet[str]] = {}
        #: Observability hook (:class:`repro.obs.Tracer`), installed for a
        #: traced replay by :func:`repro.obs.install_tracing`; None (the
        #: default) keeps the flush paths untraced and unperturbed.
        self.tracer: Optional[Any] = None
        # Lifetime statistics, for tests and the benchmark reports.
        self.enqueued = 0
        self.coalesced = 0
        self.flushes = 0
        self.flushed_keys = 0
        self.discarded = 0
        #: Keys re-read and re-swapped after losing a CAS round.
        self.cas_retries = 0
        #: Keys invalidated after exhausting every CAS retry round.
        self.cas_fallbacks = 0
        #: Extra gets_multi/cas_multi rounds forced by CAS losers — zero
        #: for a single writer, nonzero once concurrent workers contend.
        self.cas_retry_rounds = 0
        #: Per-worker attribution: ops enqueued / keys flushed per context
        #: key (the default serial context is ``None``).
        self.enqueued_by_context: Dict[Any, int] = {}
        self.flushed_keys_by_context: Dict[Any, int] = {}

    # -- state ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._ops)

    def pending_keys(self) -> List[str]:
        return list(self._ops)

    # -- worker contexts ---------------------------------------------------------

    @property
    def context_key(self) -> Any:
        """The key of the live op-queue context (None = the default)."""
        return self._context_key

    def switch_context(self, key: Any) -> None:
        """Park the live pending-op state and make ``key``'s state live.

        Mirrors :meth:`TransactionManager.switch_context
        <repro.storage.transactions.TransactionManager.switch_context>`: the
        concurrent replayer switches both in lockstep when a worker resumes,
        so the commit hooks always flush the committing worker's own ops.
        """
        if key == self._context_key:
            return
        self._contexts[self._context_key] = (self._ops, self._flushing)
        self._ops, self._flushing = self._contexts.pop(key, (OrderedDict(), False))
        self._context_key = key

    def drop_context(self, key: Any) -> None:
        """Forget a parked context (a finished worker); pending ops of an
        interrupted transaction are discarded, like an abort."""
        parked = self._contexts.pop(key, None)
        self._pending_frozen.pop(key, None)
        if parked is not None:
            self.discarded += len(parked[0])

    def pending_keys_for(self, key: Any) -> FrozenSet[str]:
        """Pending op keys of one context — live or parked.

        The key-overlap interleave policy asks this for every paused worker:
        two workers whose unflushed trigger ops target the same cache key
        are about to race that key at their commits.  Returns a cached
        frozenset (do not mutate): it stays valid until the context's key
        set changes, which for a parked context is never.
        """
        frozen = self._pending_frozen.get(key)
        if frozen is None:
            if key == self._context_key:
                frozen = frozenset(self._ops)
            else:
                parked = self._contexts.get(key)
                frozen = frozenset(parked[0]) if parked is not None else frozenset()
            self._pending_frozen[key] = frozen
        return frozen

    def _attribute(self, counter: Dict[Any, int], n: int = 1) -> None:
        counter[self._context_key] = counter.get(self._context_key, 0) + n

    # -- enqueueing -------------------------------------------------------------

    def enqueue_delete(self, owner: Any, key: str) -> None:
        """Queue an invalidation of ``key`` (wins over pending mutations)."""
        self.enqueued += 1
        self._attribute(self.enqueued_by_context)
        if key in self._ops:
            self.coalesced += 1
        else:
            self._pending_frozen.pop(self._context_key, None)
        self._ops[key] = _PendingOp("delete", owner)

    def enqueue_mutate(self, owner: Any, key: str, mutate: MutateFn,
                       counter: str = "updates_applied",
                       expire: Optional[float] = None) -> None:
        """Queue a read-modify-write of ``key``.

        A pending delete absorbs the mutation (the key will not be cached
        when the trigger would have read it, so the eager path would quit);
        a pending mutation chains with it.
        """
        self.enqueued += 1
        self._attribute(self.enqueued_by_context)
        pending = self._ops.get(key)
        if pending is not None:
            self.coalesced += 1
            if pending.kind == "delete":
                return
            pending.mutations.append(mutate)
            pending.counter = counter
            pending.expire = expire
            return
        op = _PendingOp("mutate", owner, counter=counter, expire=expire)
        op.mutations.append(mutate)
        self._pending_frozen.pop(self._context_key, None)
        self._ops[key] = op

    # -- flush / discard ---------------------------------------------------------

    def flush(self) -> int:
        """Execute the queued operations as batched multi-ops.

        Returns the number of keys operated on.  Re-entrant calls (a mutation
        that recomputes from the database commits its own read statements)
        see an empty queue and return immediately.
        """
        if self._flushing or not self._ops:
            return 0
        self._flushing = True
        self._pending_frozen.pop(self._context_key, None)
        ops, self._ops = self._ops, OrderedDict()
        tracer = self.tracer
        span = (tracer.begin("trigger:flush", pending=len(ops))
                if tracer is not None else None)
        try:
            deletes = [(k, op) for k, op in ops.items() if op.kind == "delete"]
            mutates = {k: op for k, op in ops.items() if op.kind == "mutate"}

            if mutates:
                self._flush_mutations(mutates)

            if deletes:
                self._flush_deletes(deletes)

            self.flushes += 1
            self.flushed_keys += len(ops)
            self._attribute(self.flushed_keys_by_context, len(ops))
            return len(ops)
        finally:
            if span is not None:
                tracer.end(span)
            self._flushing = False

    def _flush_deletes(self, deletes: List[Tuple[str, _PendingOp]]) -> None:
        """Flush queued invalidations, one batched multi-op per strategy.

        Each owner's :class:`~repro.core.strategies.ConsistencyStrategy`
        chooses the wire form of its batched invalidation —
        ``delete_multi`` for classic invalidation, ``lease_delete_multi``
        (stale-retaining) for leased invalidation — so a transaction mixing
        strategies still flushes one batch per (strategy, server).
        """
        groups: "OrderedDict[int, Tuple[Any, List[Tuple[str, _PendingOp]]]]" = OrderedDict()
        for key, op in deletes:
            strategy = getattr(op.owner, "strategy", None)
            bucket = groups.setdefault(id(strategy), (strategy, []))
            bucket[1].append((key, op))
        for strategy, items in groups.values():
            keys = [k for k, _ in items]
            if strategy is not None:
                removed = set(strategy.flush_invalidations(self.cache, keys))
            else:
                removed = set(self.cache.delete_multi(keys))
            for key, op in items:
                if key in removed:
                    self._credit(op.owner, "invalidations")

    def _flush_mutations(self, pending: Dict[str, _PendingOp]) -> None:
        """Propagate mutation chains with batched CAS, retrying only losers.

        Each round: one ``gets_multi`` over the outstanding keys, the chains
        applied in memory, one ``cas_multi`` per expiry group.  Keys whose
        token went stale (``mismatch``) stay outstanding for the next round;
        keys that vanished, were never cached, or whose chain declined to
        write drop out (the trigger quits, paper §3.2).  Keys still losing
        after the retry bound are invalidated for safety, exactly like the
        eager path's exhausted CAS loop.
        """
        outstanding = dict(pending)
        tracer = self.tracer
        for round_index in range(self.cas_max_retries):
            round_span = (tracer.begin("trigger:cas_round", round=round_index,
                                       outstanding=len(outstanding))
                          if tracer is not None else None)
            try:
                losers = self._flush_cas_round(outstanding, round_index)
            finally:
                if round_span is not None:
                    tracer.end(round_span)
            if losers is None:
                return
            outstanding = losers
        # Retries exhausted: invalidate the unwinnable keys so no stale
        # value survives (the eager path's identical last resort).
        self._invalidate_fallback(outstanding)

    def _flush_cas_round(self, outstanding: Dict[str, _PendingOp],
                         round_index: int) -> Optional[Dict[str, _PendingOp]]:
        """One gets_multi → mutate → cas_multi round; returns the losing
        keys still outstanding, or None when the flush is settled."""
        current = self.cache.gets_multi(list(outstanding))
        staged: Dict[Optional[float], Dict[str, Tuple[Any, int]]] = {}
        staged_ops: Dict[str, _PendingOp] = {}
        foreign: Dict[str, _PendingOp] = {}
        for key, op in outstanding.items():
            hit = current.get(key)
            if hit is None:
                continue  # not cached: the trigger quits (paper §3.2)
            value, token = hit
            if isinstance(value, dict) and _FRESH_UNTIL_KEY in value:
                # An adaptive band migration re-wrapped the entry as an
                # async-refresh envelope after this mutation enqueued.
                # Incremental patches cannot apply to the foreign
                # representation (and the envelope's base predates the
                # write), so fall back to invalidation — the chain
                # quits on a representation it does not own.
                foreign[key] = op
                continue
            dirty = False
            for mutate in op.mutations:
                # None means "this mutation leaves the entry alone"
                # (the eager path's per-op quit); later mutations in
                # the chain still apply to the last written value.
                new_value = mutate(value)
                if new_value is not None:
                    value = new_value
                    dirty = True
            if not dirty:
                continue
            staged.setdefault(op.expire, {})[key] = (value, token)
            staged_ops[key] = op
        if foreign:
            self._invalidate_fallback(foreign)
        if not staged_ops:
            return None
        losers: Dict[str, _PendingOp] = {}
        unstorable: Dict[str, _PendingOp] = {}
        for expire, items in staged.items():
            verdicts = self.cache.cas_multi(items, expire=expire)
            for key, verdict in verdicts.items():
                if verdict == CAS_STORED:
                    self._credit(staged_ops[key].owner, staged_ops[key].counter)
                elif verdict == CAS_MISMATCH:
                    # Token went stale between the batched read and this
                    # write: keep only this key for the next round.
                    losers[key] = staged_ops[key]
                elif verdict == CAS_TOO_LARGE:
                    # Re-reading cannot shrink an oversized value, so
                    # skip the retry rounds and invalidate immediately.
                    unstorable[key] = staged_ops[key]
                else:
                    # "missing": the entry vanished between the read and
                    # the write.  On a live node the invalidation is a
                    # cheap no-op (the key is already gone), but when the
                    # verdict comes from a *dead* node — CAS tokens die
                    # with their node — the fallback forwards the delete
                    # to the gutter pool, so no fallback copy of the key
                    # outlives the mutation that just failed to land.
                    unstorable[key] = staged_ops[key]
        if unstorable:
            self._invalidate_fallback(unstorable)
        if not losers:
            return None
        self.cas_retries += len(losers)
        self.cas_retry_rounds += 1
        recorder = getattr(self.cache, "recorder", None)
        if recorder is not None:
            recorder.record("cas_retry_rounds")
        telemetry = getattr(self.cache, "telemetry", None)
        if telemetry is not None:
            # Per-key contention signal for adaptive band selection:
            # each loser re-enters a retry round under a concurrent
            # writer (the mismatch itself was noted by cas_multi).
            for key in losers:
                telemetry.note_cas_retry(key)
        for op in losers.values():
            self._credit(op.owner, "cas_retries")
        return losers

    def _invalidate_fallback(self, unwinnable: Dict[str, _PendingOp]) -> None:
        """Invalidate keys whose mutation cannot be stored (lost every CAS
        round, or the value outgrew the server's item limit)."""
        self.cas_fallbacks += len(unwinnable)
        removed = set(self.cache.delete_multi(list(unwinnable)))
        for key, op in unwinnable.items():
            if key in removed:
                self._credit(op.owner, "invalidations")

    def discard(self) -> int:
        """Drop every queued operation without touching the cache (abort)."""
        dropped = len(self._ops)
        self._ops.clear()
        self._pending_frozen.pop(self._context_key, None)
        self.discarded += dropped
        return dropped

    @staticmethod
    def _credit(owner: Any, counter: str) -> None:
        stats = getattr(owner, "stats", None)
        if stats is not None and hasattr(stats, counter):
            setattr(stats, counter, getattr(stats, counter) + 1)
