"""Commit-time coalescing of trigger-side cache operations.

The paper's §5.3 overhead analysis shows that per-operation cache round trips
dominate trigger cost: every row a transaction touches fires its triggers'
cache operations independently, so a 50-row update pays 50 round trips even
when they all land on the same handful of keys.  The :class:`TriggerOpQueue`
is the middleware answer: trigger-side operations *enqueue* instead of
executing, duplicate operations against the same key coalesce, and the queue
flushes as batched multi-key operations when the surrounding database
transaction commits (aborts simply discard the queue — the cache was never
touched, so there is nothing to undo, an improvement over the eager path's
transiently dirty entries).

Deferral also amortizes the trigger-side connection: however many triggers
fired during the transaction, the flush opens (at most) one memcached
connection, realizing the paper's connection-reuse future work as a side
effect of batching.

Two operation kinds cover every generated trigger body:

* ``delete`` — invalidation; wins over any pending mutation of the key.
* ``mutate`` — a read-modify-write (incremental update, count bump, or
  recomputation).  Mutations against the same key chain in order and are
  applied to a single batched read at flush; if the key is not cached the
  whole chain quits, exactly like the eager gets/cas path.

The queue is single-writer (one database connection), so the flush's
read-apply-write needs no CAS loop: nothing can interleave between its
``get_multi`` and ``set_multi``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Mutation: current cached value -> new value, or None to leave it untouched.
MutateFn = Callable[[Any], Optional[Any]]


class _PendingOp:
    """The coalesced pending operation for one cache key."""

    __slots__ = ("kind", "owner", "mutations", "counter", "expire")

    def __init__(self, kind: str, owner: Any, counter: str = "updates_applied",
                 expire: Optional[float] = None) -> None:
        self.kind = kind                     # "delete" | "mutate"
        self.owner = owner                   # the CacheClass for stats credit
        self.mutations: List[MutateFn] = []
        self.counter = counter               # stat bumped when a write lands
        self.expire = expire


class TriggerOpQueue:
    """Per-transaction queue of trigger-side cache operations.

    Ops enqueue during the transaction (keyed by cache key, coalescing
    duplicates) and flush as ``get_multi``/``set_multi``/``delete_multi``
    batches at commit.  :meth:`discard` drops everything on abort.
    """

    def __init__(self, cache_client: Any) -> None:
        self.cache = cache_client
        self._ops: "OrderedDict[str, _PendingOp]" = OrderedDict()
        self._flushing = False
        # Lifetime statistics, for tests and the benchmark reports.
        self.enqueued = 0
        self.coalesced = 0
        self.flushes = 0
        self.flushed_keys = 0
        self.discarded = 0

    # -- state ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._ops)

    def pending_keys(self) -> List[str]:
        return list(self._ops)

    # -- enqueueing -------------------------------------------------------------

    def enqueue_delete(self, owner: Any, key: str) -> None:
        """Queue an invalidation of ``key`` (wins over pending mutations)."""
        self.enqueued += 1
        if key in self._ops:
            self.coalesced += 1
        self._ops[key] = _PendingOp("delete", owner)

    def enqueue_mutate(self, owner: Any, key: str, mutate: MutateFn,
                       counter: str = "updates_applied",
                       expire: Optional[float] = None) -> None:
        """Queue a read-modify-write of ``key``.

        A pending delete absorbs the mutation (the key will not be cached
        when the trigger would have read it, so the eager path would quit);
        a pending mutation chains with it.
        """
        self.enqueued += 1
        pending = self._ops.get(key)
        if pending is not None:
            self.coalesced += 1
            if pending.kind == "delete":
                return
            pending.mutations.append(mutate)
            pending.counter = counter
            pending.expire = expire
            return
        op = _PendingOp("mutate", owner, counter=counter, expire=expire)
        op.mutations.append(mutate)
        self._ops[key] = op

    # -- flush / discard ---------------------------------------------------------

    def flush(self) -> int:
        """Execute the queued operations as batched multi-ops.

        Returns the number of keys operated on.  Re-entrant calls (a mutation
        that recomputes from the database commits its own read statements)
        see an empty queue and return immediately.
        """
        if self._flushing or not self._ops:
            return 0
        self._flushing = True
        ops, self._ops = self._ops, OrderedDict()
        try:
            deletes = [(k, op) for k, op in ops.items() if op.kind == "delete"]
            mutates = [(k, op) for k, op in ops.items() if op.kind == "mutate"]

            if mutates:
                current = self.cache.get_multi([k for k, _ in mutates])
                writes: Dict[Optional[float], Dict[str, Any]] = {}
                written: List[Tuple[str, _PendingOp]] = []
                for key, op in mutates:
                    if key not in current:
                        continue  # not cached: the trigger quits (paper §3.2)
                    value = current[key]
                    dirty = False
                    for mutate in op.mutations:
                        # None means "this mutation leaves the entry alone"
                        # (the eager path's per-op quit); later mutations in
                        # the chain still apply to the last written value.
                        new_value = mutate(value)
                        if new_value is not None:
                            value = new_value
                            dirty = True
                    if not dirty:
                        continue
                    writes.setdefault(op.expire, {})[key] = value
                    written.append((key, op))
                for expire, mapping in writes.items():
                    self.cache.set_multi(mapping, expire=expire)
                for _key, op in written:
                    self._credit(op.owner, op.counter)

            if deletes:
                removed = set(self.cache.delete_multi([k for k, _ in deletes]))
                for key, op in deletes:
                    if key in removed:
                        self._credit(op.owner, "invalidations")

            self.flushes += 1
            self.flushed_keys += len(ops)
            return len(ops)
        finally:
            self._flushing = False

    def discard(self) -> int:
        """Drop every queued operation without touching the cache (abort)."""
        dropped = len(self._ops)
        self._ops.clear()
        self.discarded += dropped
        return dropped

    @staticmethod
    def _credit(owner: Any, counter: str) -> None:
        stats = getattr(owner, "stats", None)
        if stats is not None and hasattr(stats, counter):
            setattr(stats, counter, getattr(stats, counter) + 1)
