"""Full-serializability extension (§3.3 of the paper).

The shipped CacheGenie propagates cache updates non-transactionally.  §3.3
sketches how full transactional consistency *would* be added: memcached
tracks, per key, the set of uncommitted readers and the (single) uncommitted
writer; reads and writes block according to two-phase-locking rules; commits
and aborts clear the bookkeeping; deadlocks are broken by timeout.

This module implements that design as a coordinator that can wrap any cache
client.  Because the reproduction is single-process, "blocking" is modeled
explicitly: lock acquisition either succeeds, or raises :class:`WouldBlock`
carrying the conflicting transaction ids (the discrete-event simulation — or
a test — decides whether to wait or abort), and a wait-for graph provides
deterministic deadlock detection in addition to the paper's timeouts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import ConsistencyError, DeadlockError


class WouldBlock(ConsistencyError):
    """Raised when a read/write must wait for conflicting transactions."""

    def __init__(self, key: str, waiting_for: Set[int]) -> None:
        super().__init__(f"operation on {key!r} blocked by transactions {sorted(waiting_for)}")
        self.key = key
        self.waiting_for = set(waiting_for)


@dataclass
class _KeyState:
    """Per-key reader/writer bookkeeping (kept even for invalidated keys)."""

    readers: Set[int] = field(default_factory=set)
    writer: Optional[int] = None


class TwoPhaseLockingCoordinator:
    """Readers/writers tracking with 2PL blocking rules over cache keys."""

    def __init__(self, deadlock_timeout: float = 1.0) -> None:
        self.deadlock_timeout = deadlock_timeout
        self._keys: Dict[str, _KeyState] = {}
        self._tid_counter = itertools.count(1)
        #: Keys touched by each live transaction, for commit/abort cleanup.
        self._touched: Dict[int, Set[str]] = {}
        #: Wait-for graph edges (waiter -> blockers) for deadlock detection.
        self._waits_for: Dict[int, Set[int]] = {}
        self.committed = 0
        self.aborted = 0
        self.deadlocks_detected = 0

    # -- transaction lifecycle ----------------------------------------------------

    def begin(self) -> int:
        """Start a transaction; returns its tid (chosen by app + database)."""
        tid = next(self._tid_counter)
        self._touched[tid] = set()
        return tid

    def _require_live(self, tid: int) -> None:
        if tid not in self._touched:
            raise ConsistencyError(f"transaction {tid} is not active")

    def _state(self, key: str) -> _KeyState:
        if key not in self._keys:
            self._keys[key] = _KeyState()
        return self._keys[key]

    # -- lock acquisition -----------------------------------------------------------

    def acquire_read(self, tid: int, key: str) -> None:
        """Record a read of ``key``; blocks if another transaction wrote it.

        Per §3.3: "a transaction T reading key k will be blocked if
        (writer_k != None and writer_k != T)".
        """
        self._require_live(tid)
        state = self._state(key)
        if state.writer is not None and state.writer != tid:
            self._record_wait(tid, {state.writer})
            raise WouldBlock(key, {state.writer})
        self._clear_wait(tid)
        state.readers.add(tid)
        self._touched[tid].add(key)

    def acquire_write(self, tid: int, key: str) -> None:
        """Record a write of ``key``; blocks on a foreign writer or readers.

        Per §3.3: "a transaction T writing key k will be blocked if
        (writer_k != None and writer_k != T and readers_k - {T} != {})" —
        we additionally block on a foreign writer alone, the standard 2PL
        write-lock rule, which the paper's formula implies for its protocol
        of write-after-read upgrades.
        """
        self._require_live(tid)
        state = self._state(key)
        blockers: Set[int] = set()
        if state.writer is not None and state.writer != tid:
            blockers.add(state.writer)
        blockers.update(r for r in state.readers if r != tid)
        if blockers:
            self._record_wait(tid, blockers)
            raise WouldBlock(key, blockers)
        self._clear_wait(tid)
        state.writer = tid
        self._touched[tid].add(key)

    # -- wait-for graph / deadlock detection -------------------------------------------

    def _record_wait(self, waiter: int, blockers: Set[int]) -> None:
        self._waits_for[waiter] = set(blockers)
        cycle = self._find_cycle(waiter)
        if cycle:
            self.deadlocks_detected += 1
            self._waits_for.pop(waiter, None)
            raise DeadlockError(
                f"deadlock detected involving transactions {sorted(cycle)}"
            )

    def _clear_wait(self, tid: int) -> None:
        self._waits_for.pop(tid, None)

    def _find_cycle(self, start: int) -> Optional[Set[int]]:
        """DFS through the wait-for graph looking for a cycle containing start."""
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        visited: Set[int] = set()
        while stack:
            node, path = stack.pop()
            for blocker in self._waits_for.get(node, ()):
                if blocker == start:
                    return set(path)
                if blocker not in visited:
                    visited.add(blocker)
                    stack.append((blocker, path + [blocker]))
        return None

    # -- commit / abort -------------------------------------------------------------------

    def commit(self, tid: int) -> None:
        """Release all of ``tid``'s read/write marks (paper: on DB commit)."""
        self._require_live(tid)
        self._release(tid)
        self.committed += 1

    def abort(self, tid: int) -> List[str]:
        """Release marks and return the keys ``tid`` wrote (caller must purge
        them from the cache so subsequent reads go to the database)."""
        self._require_live(tid)
        written = [key for key in self._touched[tid]
                   if self._keys.get(key) and self._keys[key].writer == tid]
        self._release(tid)
        self.aborted += 1
        return written

    def _release(self, tid: int) -> None:
        for key in self._touched.pop(tid, set()):
            state = self._keys.get(key)
            if state is None:
                continue
            state.readers.discard(tid)
            if state.writer == tid:
                state.writer = None
            if not state.readers and state.writer is None:
                del self._keys[key]
        self._clear_wait(tid)

    # -- introspection -----------------------------------------------------------------------

    def readers_of(self, key: str) -> Set[int]:
        state = self._keys.get(key)
        return set(state.readers) if state else set()

    def writer_of(self, key: str) -> Optional[int]:
        state = self._keys.get(key)
        return state.writer if state else None

    def active_transactions(self) -> List[int]:
        return sorted(self._touched)


class TransactionalCacheSession:
    """Convenience wrapper pairing one transaction with a cache client.

    Reads and writes go through the coordinator before touching the cache,
    giving callers the §3.3 semantics without hand-managing tids.

    When the middleware batches trigger-side operations, pass a
    :class:`~repro.core.trigger_queue.TriggerOpQueue` *dedicated to this
    transaction* as ``op_queue``: the session then flushes the queued
    (coalesced) trigger ops when it commits and discards them when it
    aborts — deferred trigger propagation never leaks out of an aborted
    transaction.  The queue must not be shared between concurrent sessions
    (``flush()``/``discard()`` act on the whole queue, so a shared one would
    let one session's abort drop — or its commit prematurely publish —
    another session's pending ops).  The genie's own ``trigger_op_queue``
    is safe to share with the *database's* transaction hooks only because
    the storage engine admits a single open transaction at a time.
    """

    def __init__(self, coordinator: TwoPhaseLockingCoordinator, cache_client,
                 op_queue=None) -> None:
        self.coordinator = coordinator
        self.cache = cache_client
        self.op_queue = op_queue
        self.tid = coordinator.begin()
        self._finished = False

    def get(self, key: str) -> Any:
        self.coordinator.acquire_read(self.tid, key)
        return self.cache.get(key)

    def get_multi(self, keys) -> Dict[str, Any]:
        """Batched read: lock every key under 2PL, then one multi-get."""
        for key in keys:
            self.coordinator.acquire_read(self.tid, key)
        return self.cache.get_multi(list(keys))

    def set(self, key: str, value: Any) -> bool:
        self.coordinator.acquire_write(self.tid, key)
        return self.cache.set(key, value)

    def delete(self, key: str) -> bool:
        self.coordinator.acquire_write(self.tid, key)
        return self.cache.delete(key)

    def commit(self) -> None:
        if self._finished:
            raise ConsistencyError("transaction already finished")
        self.coordinator.commit(self.tid)
        if self.op_queue is not None:
            self.op_queue.flush()
        self._finished = True

    def abort(self) -> None:
        if self._finished:
            raise ConsistencyError("transaction already finished")
        if self.op_queue is not None:
            self.op_queue.discard()
        for key in self.coordinator.abort(self.tid):
            self.cache.delete(key)
        self._finished = True
