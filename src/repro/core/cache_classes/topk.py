"""TopKQuery: cache the top-K rows under some ordering.

"Top-K Query caches the top K elements matching some predicate ... cached
results can be incrementally updated as updates happen to the database, and
don't need to be recomputed from scratch."  (§3.1, §3.2)

The cached value is an ordered list of raw rows of length up to
``k + reserve``; the reserve rows let DELETE triggers shrink the list without
an immediate recomputation, exactly as the paper describes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ...errors import CacheClassError
from ...orm.template import QueryTemplate
from ...storage.predicates import predicate_from_filters
from ...storage.query import OrderBy, SelectQuery
from .base import CacheClass

if TYPE_CHECKING:  # pragma: no cover
    from ...orm.queryset import QueryDescription

#: Extra rows cached beyond K so deletes can be absorbed incrementally.
DEFAULT_RESERVE = 5


class TopKQuery(CacheClass):
    """Cache the top ``k`` rows of ``main_model`` per where-field group."""

    cache_class_type = "TopKQuery"

    def __init__(self, *args: Any, sort_field: str, k: int,
                 sort_order: str = "descending",
                 reserve: int = DEFAULT_RESERVE, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if k < 1:
            raise CacheClassError(f"TopKQuery {self.name!r} requires k >= 1")
        if sort_order not in ("ascending", "descending"):
            raise CacheClassError(
                f"sort_order must be 'ascending' or 'descending', got {sort_order!r}"
            )
        self.sort_column = self._resolve_column(self.main_model, sort_field)
        self.descending = sort_order == "descending"
        self.k = k
        self.reserve = reserve

    @property
    def capacity(self) -> int:
        return self.k + self.reserve

    # -- step 1: query generation ------------------------------------------------

    def compute_from_db(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        query = SelectQuery(
            table=self.main_table,
            predicate=predicate_from_filters(self._query_filters(params)),
            order_by=[OrderBy(column=self.sort_column, descending=self.descending)],
            limit=self.capacity,
        )
        return self.db.select(query)

    # -- transparent interception ---------------------------------------------------

    def _build_template(self) -> QueryTemplate:
        # limit == k encodes the Top-K shape: match() accepts queries wanting
        # the same ordering and at most K rows.
        return QueryTemplate(model=self.main_model, kind="select",
                             param_fields=tuple(self.where_fields),
                             order_by=((self.sort_column, self.descending),),
                             limit=self.k,
                             const_filters=tuple(sorted(self.const_filters.items())))

    def result_for_application(self, value: List[Dict[str, Any]],
                               description: "QueryDescription") -> Any:
        limit = description.limit if description.limit is not None else self.k
        return list(value)[: min(limit, self.k)]

    # -- evaluation shaping: never hand out more than K rows -------------------------

    def _present(self, thawed: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Trim the cached reserve rows: callers only ever see the top K."""
        return list(thawed)[: self.k]

    # -- update-in-place ---------------------------------------------------------------

    def apply_incremental_update(self, table: str, event: str,
                                 new: Optional[Dict[str, Any]],
                                 old: Optional[Dict[str, Any]]) -> None:
        pk_column = self.main_model._meta.pk_column

        if event == "insert" and new is not None:
            key = self.key_from_row(new)
            self._cas_update(key, lambda rows: self._insert_sorted(rows, new, pk_column))
            return

        if event == "delete" and old is not None:
            key = self.key_from_row(old)
            params = {c: old.get(c) for c in self.where_fields}
            queue = self._op_queue()
            if queue is not None:
                # Commit-time path: fold the remove and the refill decision
                # into one mutation, so the flush reads and writes the key
                # exactly once however the transaction interleaved deletes.
                def remove_and_refill(rows):
                    out = self._remove(rows, old, pk_column)
                    if out is not None and len(out) < self.k:
                        self.stats.recomputations += 1
                        return self._freeze(self.compute_from_db(params))
                    return out
                queue.enqueue_mutate(self, key, remove_and_refill)
                return
            removed_below_k = self._cas_update(
                key, lambda rows: self._remove(rows, old, pk_column))
            if removed_below_k:
                # If the reserve is exhausted the list may now be shorter than
                # K while the database still has qualifying rows: recompute.
                value, _ = self.trigger_cache.gets(key)
                if value is not None and len(value) < self.k:
                    self._recompute_key(key, params)
            return

        if event == "update" and new is not None and old is not None:
            old_key = self.key_from_row(old)
            new_key = self.key_from_row(new)
            if old_key == new_key:
                self._cas_update(
                    new_key, lambda rows: self._update_in_list(rows, new, pk_column))
            else:
                self._cas_update(old_key, lambda rows: self._remove(rows, old, pk_column))
                self._cas_update(new_key,
                                 lambda rows: self._insert_sorted(rows, new, pk_column))

    # -- list manipulation helpers ------------------------------------------------------

    def _sort_value(self, row: Dict[str, Any]) -> Any:
        return row.get(self.sort_column)

    def _insert_sorted(self, rows: List[Dict[str, Any]], new: Dict[str, Any],
                       pk_column: str) -> List[Dict[str, Any]]:
        """Insert ``new`` at its ordered position and trim to capacity."""
        out = [r for r in rows if r.get(pk_column) != new.get(pk_column)]
        new_value = self._sort_value(new)
        insert_pos = len(out)
        for idx, row in enumerate(out):
            existing = self._sort_value(row)
            if self.descending:
                if new_value is not None and (existing is None or new_value > existing):
                    insert_pos = idx
                    break
            else:
                if new_value is not None and (existing is None or new_value < existing):
                    insert_pos = idx
                    break
        if insert_pos >= self.capacity:
            # The new row sorts below everything we keep: nothing to do.
            return out if len(out) != len(rows) else None
        out.insert(insert_pos, dict(new))
        return out[: self.capacity]

    def _remove(self, rows: List[Dict[str, Any]], old: Dict[str, Any],
                pk_column: str) -> Optional[List[Dict[str, Any]]]:
        out = [r for r in rows if r.get(pk_column) != old.get(pk_column)]
        if len(out) == len(rows):
            return None
        return out

    def _update_in_list(self, rows: List[Dict[str, Any]], new: Dict[str, Any],
                        pk_column: str) -> Optional[List[Dict[str, Any]]]:
        """Replace the row if present, then restore ordering."""
        present = any(r.get(pk_column) == new.get(pk_column) for r in rows)
        if not present:
            # The paper's UPDATE trigger only touches posts already in the list;
            # but if the updated row now sorts into the window, insert it.
            return self._insert_sorted(rows, new, pk_column)
        out = [r for r in rows if r.get(pk_column) != new.get(pk_column)]
        return self._insert_sorted(out, new, pk_column) or out
