"""CountQuery: cache the number of rows matching a predicate.

"Count Query caches the count of rows matching some predicate ... Count
queries are good candidates for caching, as they take up little memory in
cache but can be slow to execute in the database."  (§3.1)

The cached value is a plain integer.  Update-in-place uses memcached's
``incr``/``decr`` so the trigger never has to read the old value.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from ...orm.template import QueryTemplate
from ...storage.predicates import predicate_from_filters
from ...storage.query import CountQuery as StorageCountQuery
from ..serializer import freeze_value
from .base import CacheClass

if TYPE_CHECKING:  # pragma: no cover
    from ...orm.queryset import QueryDescription


class CountQuery(CacheClass):
    """Cache ``COUNT(*)`` of ``main_model`` rows grouped by ``where_fields``."""

    cache_class_type = "CountQuery"

    # -- step 1: query generation ------------------------------------------------

    def compute_from_db(self, params: Dict[str, Any]) -> int:
        query = StorageCountQuery(
            table=self.main_table,
            predicate=predicate_from_filters(self._query_filters(params)),
        )
        return self.db.count(query)

    # -- value handling ------------------------------------------------------------

    def _freeze(self, value: Any) -> Any:
        return int(value)

    def _thaw(self, value: Any) -> Any:
        return int(value)

    # -- transparent interception ----------------------------------------------------

    def _build_template(self) -> QueryTemplate:
        return QueryTemplate(model=self.main_model, kind="count",
                             param_fields=tuple(self.where_fields),
                             const_filters=tuple(sorted(self.const_filters.items())))

    def result_for_application(self, value: int,
                               description: "QueryDescription") -> int:
        return int(value)

    # -- update-in-place ---------------------------------------------------------------

    def apply_incremental_update(self, table: str, event: str,
                                 new: Optional[Dict[str, Any]],
                                 old: Optional[Dict[str, Any]]) -> None:
        if event == "insert" and new is not None:
            self._bump(self.key_from_row(new), +1)
            return
        if event == "delete" and old is not None:
            self._bump(self.key_from_row(old), -1)
            return
        if event == "update" and new is not None and old is not None:
            old_key = self.key_from_row(old)
            new_key = self.key_from_row(new)
            if old_key != new_key:
                # A group-moving update is a pure-counter run: one batched
                # incr_multi carries the -1/+1 pair in a single round trip
                # per server on the eager path (queued mode chains per key).
                self._bump_many({old_key: -1, new_key: +1})
            # An update that keeps the where-field does not change the count.

    def _bump(self, key: str, delta: int) -> None:
        """Increment/decrement the cached count if (and only if) it is cached."""
        self._bump_many({key: delta})

    def _bump_many(self, deltas: Dict[str, int]) -> None:
        """Apply a run of counter deltas, batched where the path allows.

        With commit-time batching the deltas enqueue per key (chaining with
        the transaction's other mutations).  The eager path sends every run
        — single deltas included — through the ``incr_multi`` bulk counter
        protocol: one round trip per server batch, signed deltas, so a
        group-moving UPDATE's ``-1``/``+1`` pair rides one wire batch and
        single bumps no longer need their own ``incr``/``decr`` code path.
        """
        telemetry = getattr(self.trigger_cache, "telemetry", None)
        if telemetry is not None:
            # Adaptive runs only: counter bumps bypass ``_cas_update``, so
            # they attribute their write telemetry here (same convention).
            for key in deltas:
                telemetry.note_write(key)
        queue = self._op_queue()
        if queue is not None:
            for key, delta in deltas.items():
                queue.enqueue_mutate(self, key, lambda value, d=delta: (
                    max(0, value + d) if isinstance(value, int) else None))
            return
        results = self.trigger_cache.incr_multi(deltas)
        self.stats.updates_applied += sum(
            1 for value in results.values() if value is not None)
