"""CacheGenie caching abstractions (cache classes)."""

from .base import CacheClass, TriggerSpec
from .count import CountQuery
from .feature import FeatureQuery
from .link import ChainStep, LinkQuery
from .topk import TopKQuery

#: Registry of built-in cache classes, keyed by their ``cache_class_type``
#: name as used in ``cacheable(cache_class_type=...)``.
BUILTIN_CACHE_CLASSES = {
    FeatureQuery.cache_class_type: FeatureQuery,
    LinkQuery.cache_class_type: LinkQuery,
    CountQuery.cache_class_type: CountQuery,
    TopKQuery.cache_class_type: TopKQuery,
}

__all__ = [
    "BUILTIN_CACHE_CLASSES",
    "CacheClass",
    "ChainStep",
    "CountQuery",
    "FeatureQuery",
    "LinkQuery",
    "TopKQuery",
    "TriggerSpec",
]
