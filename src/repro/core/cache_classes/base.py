"""The CacheClass base: the contract every caching abstraction implements.

Per §3.1 of the paper, a cache class must perform three tasks:

1. **Query generation** — derive the database query template that computes a
   cached object's value from the models/fields named in its definition.
2. **Trigger generation** — report which tables and events need triggers and
   provide the handler code that keeps affected keys consistent.
3. **Query evaluation** — fetch the value from the cache, falling back to the
   database (and populating the cache) on a miss, and transform the value
   into what the application expects.

Subclasses (FeatureQuery, LinkQuery, CountQuery, TopKQuery) specialize the
query template, the affected-key computation, and the incremental update
logic.  Consistency *policy* lives on the object's
:class:`~repro.core.strategies.ConsistencyStrategy`: the read path, the
trigger dispatch, and expiry all go through ``self.strategy`` — a cache
class never compares strategy names.  The shared plumbing — key naming, CAS
retry loops, statistics — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ...errors import CacheClassError
from ...orm.template import QueryTemplate
from ..keys import KeyScheme, fingerprint
from ..serializer import freeze_rows, freeze_value, thaw_rows
from ..stats import CachedObjectStats
from ..strategies import (ConsistencyStrategy, UPDATE_IN_PLACE,
                          _FRESH_UNTIL_KEY, resolve_strategy)

if TYPE_CHECKING:  # pragma: no cover
    from ...orm.queryset import QueryDescription
    from ..manager import CacheGenie

#: Maximum CAS retries inside a trigger before falling back to invalidation.
CAS_MAX_RETRIES = 5


@dataclass
class TriggerSpec:
    """One trigger a cached object needs: table + event + handler."""

    table: str
    event: str
    handler: Callable[[Dict[str, Any]], None]
    description: str = ""


class CacheClass:
    """Base class for CacheGenie caching abstractions ("cache classes")."""

    #: Name used in ``cacheable(cache_class_type=...)``.
    cache_class_type = "Abstract"

    def __init__(
        self,
        name: str,
        genie: "CacheGenie",
        main_model: type,
        where_fields: Sequence[str],
        update_strategy: Any = UPDATE_IN_PLACE,
        use_transparently: bool = True,
        expiry_seconds: Optional[float] = None,
        template: Optional[QueryTemplate] = None,
        const_filters: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not where_fields:
            raise CacheClassError(
                f"cached object {name!r} must declare at least one where_field"
            )
        self.name = name
        self.genie = genie
        self.main_model = main_model
        self.where_fields: List[str] = [
            self._resolve_column(main_model, f) for f in where_fields
        ]
        #: Constant equality filters narrowing the cached rows (e.g. a
        #: ``status="PENDING"`` alongside the Param): part of the query
        #: shape, the key fingerprint, and the trigger row gate.
        self.const_filters: Dict[str, Any] = {
            self._resolve_column(main_model, column): value
            for column, value in (const_filters or {}).items()
        }
        #: The consistency policy, resolved through the strategy registry;
        #: accepts a registered name or a ConsistencyStrategy instance.
        self.strategy: ConsistencyStrategy = resolve_strategy(update_strategy)
        self.expiry_seconds = expiry_seconds
        self.use_transparently = use_transparently
        self.stats = CachedObjectStats()
        self.keys = KeyScheme(name, self._fingerprint())
        #: The normalized query shape; built lazily (after subclass __init__
        #: has set shape attributes) when not supplied by the declaration.
        self._declared_template = template

    # -- helpers ---------------------------------------------------------------

    @property
    def update_strategy(self) -> str:
        """The strategy's registry name (the pre-object API surface)."""
        return self.strategy.name

    @staticmethod
    def _resolve_column(model: type, field_name: str) -> str:
        """Resolve a field name (or raw column) to its storage column."""
        return model._meta.column_for(field_name)

    def _fingerprint(self) -> str:
        consts = ",".join(f"{c}={self.const_filters[c]!r}"
                          for c in sorted(self.const_filters))
        return fingerprint(self.cache_class_type, self.main_table,
                           ",".join(self.where_fields) + ("|" + consts if consts else ""))

    @property
    def main_table(self) -> str:
        return self.main_model._meta.db_table

    @property
    def db(self):
        return self.genie.db

    @property
    def app_cache(self):
        return self.genie.app_cache

    @property
    def trigger_cache(self):
        return self.genie.trigger_cache

    def _op_queue(self):
        """The genie's commit-time trigger-op queue, or None when eager."""
        return getattr(self.genie, "trigger_op_queue", None)

    def _expire(self, key: Optional[str] = None) -> Optional[float]:
        return self.strategy.expiry_for(self, key=key)

    def _query_filters(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Parameter values merged with the declared constant filters."""
        if not self.const_filters:
            return params
        merged = dict(self.const_filters)
        merged.update(params)
        return merged

    # -- key construction ------------------------------------------------------

    def make_key(self, **params: Any) -> str:
        """Build the cache key for one combination of where-field values."""
        values = []
        for column in self.where_fields:
            if column not in params:
                raise CacheClassError(
                    f"cached object {self.name!r} requires parameter {column!r}"
                )
            values.append(params[column])
        return self.keys.key_for(values)

    def key_from_row(self, row: Dict[str, Any]) -> str:
        """Build the cache key from a main-table row's values."""
        return self.keys.key_for([row.get(c) for c in self.where_fields])

    def row_in_scope(self, row: Optional[Dict[str, Any]]) -> bool:
        """Whether a main-table row satisfies the declared constant filters."""
        if row is None:
            return False
        return all(row.get(column) == value
                   for column, value in self.const_filters.items())

    # -- step 1: query generation (subclass responsibility) --------------------

    def compute_from_db(self, params: Dict[str, Any]) -> Any:
        """Compute the cached value for ``params`` from the database."""
        raise NotImplementedError

    # -- step 2: trigger generation ---------------------------------------------

    def trigger_tables(self) -> List[str]:
        """Tables whose changes can affect this cached object."""
        return [self.main_table]

    def get_trigger_info(self) -> List[TriggerSpec]:
        """Return the trigger specs CacheGenie must install for this object."""
        if not self.strategy.needs_triggers:
            return []
        specs: List[TriggerSpec] = []
        for table in self.trigger_tables():
            for event in ("insert", "update", "delete"):
                specs.append(TriggerSpec(
                    table=table,
                    event=event,
                    handler=self._make_handler(table, event),
                    description=(
                        f"{self.cache_class_type} {self.name!r}: sync on "
                        f"{event.upper()} of {table!r} ({self.update_strategy})"
                    ),
                ))
        return specs

    def _make_handler(self, table: str, event: str) -> Callable[[Dict[str, Any]], None]:
        def handler(trigger_data: Dict[str, Any]) -> None:
            self.handle_trigger(table, event,
                                new=trigger_data.get("new"),
                                old=trigger_data.get("old"))
        handler.__name__ = f"cg_{self.name}_{table}_{event}"
        return handler

    # -- step 3: evaluation ------------------------------------------------------

    def evaluate(self, **params: Any) -> Any:
        """Fetch the cached value, falling back to the database on a miss.

        This is both the explicit API (``cached_user_profile.evaluate(user_id=42)``)
        and what transparent interception calls under the hood.  The read
        path is the strategy's: a plain look-aside get for the triggered
        strategies, a lease read for leased invalidation, an envelope
        freshness check for async-refresh.
        """
        self.genie.run_pending_refreshes()
        normalized = self._normalize_params(params)
        key = self.make_key(**normalized)
        frozen = self.strategy.fetch(self, key, normalized)
        return self._present(self._thaw(frozen))

    def evaluate_multi(self, params_list: Sequence[Dict[str, Any]]) -> List[Any]:
        """Batched :meth:`evaluate`: one multi-get round trip per server.

        Misses are computed from the database and written back with a single
        batched ``set_multi``.  Results come back in request order.
        """
        return evaluate_many([(self, params) for params in params_list])

    def _present(self, thawed: Any) -> Any:
        """Shape a thawed cached value the way evaluate() hands it out.

        Subclasses whose :meth:`evaluate` post-processes the raw cached value
        (TopKQuery trims the reserve rows) override this so the batched
        :func:`evaluate_many` path returns the same shape.
        """
        return thawed

    def peek(self, **params: Any) -> Optional[Any]:
        """Return the cached value without falling back to the database."""
        key = self.make_key(**self._normalize_params(params))
        value = self.strategy.peek(self, key)
        return self._thaw(value) if value is not None else None

    def _normalize_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Accept field names or columns; resolve model instances to pks."""
        from ...errors import FieldError
        normalized: Dict[str, Any] = {}
        for key, value in params.items():
            try:
                column = self._resolve_column(self.main_model, key)
            except FieldError:
                column = key
            if hasattr(value, "pk"):
                value = value.pk
            normalized[column] = value
        return normalized

    # Value freezing/thawing: subclasses override for non-list values.

    def _freeze(self, value: Any) -> Any:
        return freeze_rows(value)

    def _thaw(self, value: Any) -> Any:
        return thaw_rows(value)

    # -- transparent interception -------------------------------------------------

    @property
    def template(self) -> QueryTemplate:
        """The :class:`QueryTemplate` describing this object's query shape.

        Queryset-native declarations pass the template in; the legacy keyword
        form (and direct construction) derives an equivalent one here, so
        *both* declaration styles and interception share one shape definition.
        """
        if self._declared_template is None:
            self._declared_template = self._build_template()
        return self._declared_template

    def _build_template(self) -> QueryTemplate:
        """Derive the query shape from this object's declaration parameters."""
        return QueryTemplate(model=self.main_model, kind="select",
                             param_fields=tuple(self.where_fields),
                             const_filters=tuple(sorted(self.const_filters.items())))

    def matches(self, description: "QueryDescription") -> Optional[Dict[str, Any]]:
        """Return evaluate() parameters if this object can satisfy the query.

        Matching is delegated to :meth:`QueryTemplate.match` — the same
        normalization the declaration produced — so the set of intercepted
        queries is exactly the declared shape.
        """
        return self.template.match(description)

    def result_for_application(self, value: Any,
                               description: "QueryDescription") -> Any:
        """Transform a cached value into the shape the QuerySet expects."""
        return value

    # -- trigger handling ----------------------------------------------------------

    def handle_trigger(self, table: str, event: str,
                       new: Optional[Dict[str, Any]],
                       old: Optional[Dict[str, Any]]) -> None:
        """Dispatch a trigger firing to the configured consistency strategy."""
        self.stats.trigger_invocations += 1
        self.trigger_cache.reset_connection()
        if self.const_filters and table == self.main_table:
            # Constant filters gate which rows belong to the cached set: a
            # row moving across the constant boundary is an insert/delete
            # from the cache's point of view; a row outside it is a no-op.
            event, new, old = self._project_const_event(event, new, old)
            if event is None:
                return
        self.strategy.on_write(self, table, event, new, old)

    def _project_const_event(
        self, event: str, new: Optional[Dict[str, Any]],
        old: Optional[Dict[str, Any]],
    ) -> Tuple[Optional[str], Optional[Dict[str, Any]], Optional[Dict[str, Any]]]:
        """Re-express a row change relative to the constant-filtered subset."""
        new_in = self.row_in_scope(new)
        old_in = self.row_in_scope(old)
        if event == "insert":
            return ("insert", new, None) if new_in else (None, None, None)
        if event == "delete":
            return ("delete", None, old) if old_in else (None, None, None)
        # update
        if new_in and old_in:
            return "update", new, old
        if new_in:
            return "insert", new, None   # the row entered the cached subset
        if old_in:
            return "delete", None, old   # the row left the cached subset
        return None, None, None

    def invalidate_affected(self, table: str, event: str,
                            new: Optional[Dict[str, Any]],
                            old: Optional[Dict[str, Any]]) -> None:
        """Invalidate every key affected by a row change (strategy hook target).

        The delete itself goes through the strategy — a plain ``delete`` for
        classic invalidation, a stale-retaining ``lease_delete`` for leased
        invalidation — and through the commit-time queue when batching is on
        (the flush groups keys per strategy and uses its batched form).
        """
        keys = set()
        for row in (new, old):
            if row is not None:
                keys.update(self.affected_keys(table, row))
        queue = self._op_queue()
        for key in keys:
            if queue is not None:
                queue.enqueue_delete(self, key)
            elif self.strategy.invalidate_eager(self, key):
                self.stats.invalidations += 1

    # Backwards-compatible alias (pre-registry name).
    _invalidate_affected = invalidate_affected

    def affected_keys(self, table: str, row: Dict[str, Any]) -> List[str]:
        """Cache keys affected by a change to ``row`` in ``table``.

        The base implementation assumes ``table`` is the main table and keys
        are derived directly from the row's where-field values; subclasses
        with join chains override this.  Rows outside the declared constant
        filters affect nothing.
        """
        if table != self.main_table:
            return []
        if self.const_filters and not self.row_in_scope(row):
            return []
        return [self.key_from_row(row)]

    def apply_incremental_update(self, table: str, event: str,
                                 new: Optional[Dict[str, Any]],
                                 old: Optional[Dict[str, Any]]) -> None:
        """Apply the update-in-place strategy (subclass responsibility)."""
        raise NotImplementedError

    # -- shared update helpers ------------------------------------------------------

    def _cas_update(self, key: str, mutate: Callable[[Any], Any]) -> bool:
        """Read-modify-write ``key`` with gets/cas, as the paper's triggers do.

        ``mutate`` receives the current value and returns the new value, or
        ``None`` to leave the entry untouched.  Returns True if an update was
        written.  If the key is absent the trigger quits (paper: "If not
        present, the trigger quits").

        With commit-time batching enabled the mutation is enqueued instead
        (applied to a single batched read at flush); the queue's single-writer
        flush needs no CAS loop.  Returns True, meaning "accepted".
        """
        telemetry = getattr(self.trigger_cache, "telemetry", None)
        if telemetry is not None:
            # Adaptive runs only: attribute the write to the patch's target
            # key here, where the trigger already knows it — the adaptive
            # strategy's all-cold write path relies on this so it never has
            # to recompute the affected-key set just for telemetry.
            telemetry.note_write(key)
        queue = self._op_queue()
        if queue is not None:
            queue.enqueue_mutate(self, key, mutate)
            return True
        for attempt in range(CAS_MAX_RETRIES):
            value, token = self.trigger_cache.gets(key)
            if value is None:
                return False
            if isinstance(value, dict) and _FRESH_UNTIL_KEY in value:
                # An adaptive band migration left an async-refresh envelope
                # under this key; the incremental patch cannot apply to the
                # foreign representation, so invalidate instead — the next
                # read recomputes under the key's current band.
                self.trigger_cache.delete(key)
                self.stats.invalidations += 1
                return False
            new_value = mutate(value)
            if new_value is None:
                return False
            if self.trigger_cache.cas(key, new_value, token):
                self.stats.updates_applied += 1
                return True
            self.stats.cas_retries += 1
        # Could not win the CAS race: fall back to invalidation for safety.
        self.trigger_cache.delete(key)
        self.stats.invalidations += 1
        return False

    def _recompute_key(self, key: str, params: Dict[str, Any]) -> None:
        """Recompute a key's value from the database and overwrite it."""
        queue = self._op_queue()
        if queue is not None:
            # The flush's batched read supplies the "only maintain entries
            # already cached" check; the recompute runs post-commit, so it
            # sees the transaction's final state exactly once per key.
            queue.enqueue_mutate(
                self, key,
                lambda _current: self._freeze(self.compute_from_db(params)),
                counter="recomputations", expire=self._expire(key))
            return
        current, _token = self.trigger_cache.gets(key)
        if current is None:
            # Paper semantics: triggers only maintain entries already cached.
            return
        value = self.compute_from_db(params)
        self.trigger_cache.set(key, self._freeze(value), expire=self._expire(key))
        self.stats.recomputations += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.__class__.__name__} {self.name!r} on {self.main_table!r} "
            f"by {self.where_fields!r} ({self.update_strategy})>"
        )


def evaluate_many(
    requests: Sequence[Tuple["CacheClass", Dict[str, Any]]],
) -> List[Any]:
    """Batched evaluate() across cached objects sharing one cache client.

    All requested keys are fetched in one round trip per server per strategy
    read protocol (``get_multi`` for the classic strategies, ``lease_multi``
    for leased invalidation); misses fall back to the database per object
    and are written back with a single batched ``set_multi`` per
    (strategy, expiry) group.  Results are returned in request order, shaped
    exactly as the individual ``evaluate()`` calls would shape them.
    """
    if not requests:
        return []
    client = requests[0][0].app_cache
    requests[0][0].genie.run_pending_refreshes()
    entries: List[Tuple[CacheClass, str, Dict[str, Any]]] = []
    for cached_object, params in requests:
        if cached_object.app_cache is not client:
            raise CacheClassError(
                "evaluate_many() requires cached objects on the same cache client"
            )
        normalized = cached_object._normalize_params(dict(params))
        entries.append((cached_object, cached_object.make_key(**normalized),
                        normalized))

    # Fetch phase: group unique keys by strategy so each read protocol runs
    # one batched round trip per server (a stale-serving strategy also
    # schedules its background refreshes here).
    by_strategy: Dict[int, Tuple[ConsistencyStrategy, List[Tuple[CacheClass, str, Dict[str, Any]]]]] = {}
    seen_keys = set()
    for cached_object, key, normalized in entries:
        if key in seen_keys:
            continue
        seen_keys.add(key)
        bucket = by_strategy.setdefault(
            id(cached_object.strategy), (cached_object.strategy, []))
        bucket[1].append((cached_object, key, normalized))
    found: Dict[str, Tuple[Any, bool]] = {}
    for strategy, items in by_strategy.values():
        found.update(strategy.fetch_multi(client, items))

    # Miss write-back: every value is enveloped by its *own* object's
    # strategy (wrap_for_store may depend on per-object state), then batched
    # into one set_multi per expiry group — the same round trips as before.
    writes: Dict[Optional[float], Dict[str, Any]] = {}
    computed: Dict[str, Any] = {}
    results: List[Any] = []
    for cached_object, key, normalized in entries:
        if key in found:
            frozen, stale = found[key]
            cached_object.stats.cache_hits += 1
            if stale:
                cached_object.stats.stale_served += 1
        elif key in computed:
            # A duplicate request in the same batch: serve the value computed
            # a moment ago (a sequential loop would have hit the fresh entry).
            cached_object.stats.cache_hits += 1
            frozen = computed[key]
        else:
            cached_object.stats.cache_misses += 1
            cached_object.stats.db_fallbacks += 1
            value = cached_object.compute_from_db(normalized)
            frozen = cached_object._freeze(value)
            computed[key] = frozen
            writes.setdefault(cached_object._expire(key), {})[key] = \
                cached_object.strategy.wrap_for_store(cached_object, frozen,
                                                      key=key)
        results.append(cached_object._present(cached_object._thaw(frozen)))
    for expire, mapping in writes.items():
        client.set_multi(mapping, expire=expire)
    return results
