"""FeatureQuery: cache the rows of one model matching an equality predicate.

"Feature Query involves reading some or all features associated with an
entity ... reading a (partial or full) row from a table satisfying some
clause — typically one or more WHERE clauses."  (§3.1)

The cached value is the list of raw result rows (dicts), keyed by the values
of the ``where_fields`` columns (for example ``Profile`` rows keyed by
``user_id``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from ...storage.predicates import predicate_from_filters
from ...storage.query import SelectQuery
from .base import CacheClass

if TYPE_CHECKING:  # pragma: no cover
    from ...orm.queryset import QueryDescription


class FeatureQuery(CacheClass):
    """Cache full rows of ``main_model`` selected by equality on ``where_fields``."""

    cache_class_type = "FeatureQuery"

    # -- step 1: query generation ------------------------------------------------

    def compute_from_db(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        query = SelectQuery(
            table=self.main_table,
            predicate=predicate_from_filters(self._query_filters(params)),
        )
        return self.db.select(query)

    # -- transparent interception --------------------------------------------------

    # matches() comes from the base class: the inherited feature-shaped
    # template accepts any ordering/limit, which result_for_application()
    # applies to the cached row set below.

    def result_for_application(self, value: List[Dict[str, Any]],
                               description: "QueryDescription") -> Any:
        rows = list(value)
        if description.order_by:
            for column, descending in reversed(description.order_by):
                rows.sort(key=lambda r, c=column: (r.get(c) is None, r.get(c)),
                          reverse=descending)
        if description.limit is not None:
            rows = rows[: description.limit]
        return rows

    # -- update-in-place -----------------------------------------------------------

    def apply_incremental_update(self, table: str, event: str,
                                 new: Optional[Dict[str, Any]],
                                 old: Optional[Dict[str, Any]]) -> None:
        pk_column = self.main_model._meta.pk_column

        if event == "insert" and new is not None:
            key = self.key_from_row(new)
            self._cas_update(key, lambda rows: self._append_row(rows, new, pk_column))
            return

        if event == "delete" and old is not None:
            key = self.key_from_row(old)
            self._cas_update(key, lambda rows: self._remove_row(rows, old, pk_column))
            return

        if event == "update" and new is not None and old is not None:
            old_key = self.key_from_row(old)
            new_key = self.key_from_row(new)
            if old_key == new_key:
                self._cas_update(new_key,
                                 lambda rows: self._replace_row(rows, new, pk_column))
            else:
                # The row moved between key groups (its where-field changed).
                self._cas_update(old_key,
                                 lambda rows: self._remove_row(rows, old, pk_column))
                self._cas_update(new_key,
                                 lambda rows: self._append_row(rows, new, pk_column))

    @staticmethod
    def _append_row(rows: List[Dict[str, Any]], new: Dict[str, Any],
                    pk_column: str) -> List[Dict[str, Any]]:
        out = [r for r in rows if r.get(pk_column) != new.get(pk_column)]
        out.append(dict(new))
        return out

    @staticmethod
    def _remove_row(rows: List[Dict[str, Any]], old: Dict[str, Any],
                    pk_column: str) -> List[Dict[str, Any]]:
        return [r for r in rows if r.get(pk_column) != old.get(pk_column)]

    @staticmethod
    def _replace_row(rows: List[Dict[str, Any]], new: Dict[str, Any],
                     pk_column: str) -> List[Dict[str, Any]]:
        out = []
        replaced = False
        for row in rows:
            if row.get(pk_column) == new.get(pk_column):
                out.append(dict(new))
                replaced = True
            else:
                out.append(row)
        if not replaced:
            out.append(dict(new))
        return out
