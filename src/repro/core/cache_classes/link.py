"""LinkQuery: cache the result of traversing relationships (joins).

"Link Query involves traversing relationships between entities ... these
queries involve traversing foreign key relationships between different
tables.  Since they involve joins, Link Queries are typically slow; caching
frequently executed Link Queries is often beneficial."  (§3.1)

A LinkQuery is declared as a *chain* starting from a base model (filtered by
``where_fields``) and following one or more relationship steps; the cached
value is the list of rows of the final model in the chain.  Example — the
bookmarks created by a user's friends::

    cacheable(cache_class_type="LinkQuery",
              main_model="Friendship", where_fields=["from_user_id"],
              chain=[ChainStep.forward("to_user"),
                     ChainStep.reverse("BookmarkInstance", "adder")])

Triggers are installed on *every* table in the chain; a change anywhere walks
the chain backwards to find the affected keys, which keeps invalidations
scoped to exactly the entries whose data changed (unlike template-based
schemes, §2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from ...errors import CacheClassError
from ...orm.template import ChainStep, QueryTemplate, coerce_chain_step
from ...storage.predicates import predicate_from_filters
from ...storage.query import Join, OrderBy, SelectQuery
from .base import CacheClass

if TYPE_CHECKING:  # pragma: no cover
    from ...orm.queryset import QueryDescription

__all__ = ["ChainStep", "LinkQuery"]


class LinkQuery(CacheClass):
    """Cache rows reached by traversing a relationship chain from a base model."""

    cache_class_type = "LinkQuery"

    def __init__(self, *args: Any, chain: Sequence[ChainStep],
                 order_by: Optional[str] = None,
                 descending: bool = True,
                 limit: Optional[int] = None, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if self.const_filters:
            # Parity with QueryTemplate.from_queryset: chain evaluation does
            # not apply constant predicates, so accepting one here would
            # silently cache unfiltered rows under a filtered shape.
            raise CacheClassError(
                f"LinkQuery {self.name!r} does not support const_filters; "
                f"filter the chain's base rows with where_fields only"
            )
        if not chain:
            raise CacheClassError(
                f"LinkQuery {self.name!r} requires a non-empty relationship chain"
            )
        self.chain = [coerce_chain_step(step) for step in chain]
        self.limit = limit
        self.descending = descending
        #: Models along the chain, index 0 = base model.
        self.chain_models: List[type] = [self.main_model]
        registry = self.main_model._meta.registry
        for step in self.chain:
            current = self.chain_models[-1]
            if step.direction == "forward":
                field = current._meta.get_field(step.field)
                target = field.resolve_target(registry)
            else:
                target = registry.get_model(step.model_name)
                # Validate that the FK actually exists on the next model.
                target._meta.get_field(step.field)
            self.chain_models.append(target)
        self.result_model = self.chain_models[-1]
        self.order_column = (
            self._resolve_column(self.result_model, order_by) if order_by else None
        )

    def _fingerprint(self) -> str:
        # Include the chain (set lazily after __init__ of the base class runs,
        # so fall back to the base fingerprint during construction).
        chain = getattr(self, "chain", None)
        base = super()._fingerprint()
        if not chain:
            return base
        steps = ",".join(f"{s.direction}:{s.field}:{s.model_name}" for s in chain)
        return f"{base}|{steps}"

    # -- step 1: query generation ------------------------------------------------

    def _build_joins(self) -> List[Join]:
        joins: List[Join] = []
        registry = self.main_model._meta.registry
        for idx, step in enumerate(self.chain):
            current = self.chain_models[idx]
            nxt = self.chain_models[idx + 1]
            if step.direction == "forward":
                fk = current._meta.get_field(step.field)
                joins.append(Join(
                    left_table=current._meta.db_table,
                    left_column=fk.column,
                    right_table=nxt._meta.db_table,
                    right_column=nxt._meta.pk_column,
                ))
            else:
                fk = nxt._meta.get_field(step.field)
                joins.append(Join(
                    left_table=current._meta.db_table,
                    left_column=current._meta.pk_column,
                    right_table=nxt._meta.db_table,
                    right_column=fk.column,
                ))
        return joins

    def compute_from_db(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        query = SelectQuery(
            table=self.main_table,
            predicate=predicate_from_filters(params),
            joins=self._build_joins(),
            select_from=self.result_model._meta.db_table,
        )
        if self.order_column:
            query.order_by = [OrderBy(column=self.order_column, descending=self.descending)]
        if self.limit is not None:
            query.limit = self.limit
        return self.db.select(query)

    # -- transparent interception ---------------------------------------------------

    def _build_template(self) -> QueryTemplate:
        # The chain makes template.match() always decline: single-table ORM
        # querysets cannot express joins, so LinkQuery results are fetched
        # through evaluate() (explicit use), exactly like the paper's opt-out
        # path.
        order_by = ((self.order_column, self.descending),) if self.order_column else ()
        return QueryTemplate(
            model=self.main_model, kind="select",
            param_fields=tuple(self.where_fields),
            order_by=order_by, limit=self.limit, chain=tuple(self.chain),
        )

    # -- trigger generation ------------------------------------------------------------

    def trigger_tables(self) -> List[str]:
        return [model._meta.db_table for model in self.chain_models]

    # -- affected keys -------------------------------------------------------------------

    def affected_keys(self, table: str, row: Dict[str, Any]) -> List[str]:
        """Walk the chain backwards from ``table`` to base where-field values."""
        if table == self.main_table:
            return [self.key_from_row(row)]
        # Find which chain position the table occupies (it may appear once).
        for idx in range(1, len(self.chain_models)):
            if self.chain_models[idx]._meta.db_table == table:
                base_rows = self._walk_back(idx, [row])
                keys = {self.key_from_row(base_row) for base_row in base_rows}
                return sorted(keys)
        return []

    def _walk_back(self, index: int, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Map rows of chain model ``index`` to connected rows of the base model."""
        current_rows = rows
        for idx in range(index, 0, -1):
            step = self.chain[idx - 1]
            parent_model = self.chain_models[idx - 1]
            parent_table = parent_model._meta.db_table
            parent_pk = parent_model._meta.pk_column
            next_rows: List[Dict[str, Any]] = []
            if step.direction == "forward":
                # parent.fk == current.pk  =>  query parents by fk value.
                fk = parent_model._meta.get_field(step.field)
                child_pk = self.chain_models[idx]._meta.pk_column
                for row in current_rows:
                    self.genie.recorder.record("trigger_rows_examined")
                    next_rows.extend(
                        self.db.find(parent_table, where={fk.column: row.get(child_pk)})
                    )
            else:
                # current.fk == parent.pk  =>  parent pk comes straight off the row.
                fk = self.chain_models[idx]._meta.get_field(step.field)
                parent_ids = {row.get(fk.column) for row in current_rows if row.get(fk.column) is not None}
                if idx - 1 == 0 and self.where_fields == [parent_pk]:
                    # Shortcut: the key is the parent pk itself; no query needed.
                    next_rows = [{parent_pk: pid} for pid in parent_ids]
                else:
                    for pid in parent_ids:
                        self.genie.recorder.record("trigger_rows_examined")
                        found = self.db.get_by_pk(parent_table, pid)
                        if found is not None:
                            next_rows.append(found)
            current_rows = next_rows
            if not current_rows:
                break
        return current_rows

    # -- update-in-place --------------------------------------------------------------------

    def apply_incremental_update(self, table: str, event: str,
                                 new: Optional[Dict[str, Any]],
                                 old: Optional[Dict[str, Any]]) -> None:
        """Incrementally maintain affected keys.

        Changes to the *final* table can be patched into cached lists directly
        (the rows cached are rows of that table); changes to the base or
        intermediate tables alter which rows belong to the result, so affected
        keys are recomputed from the database — still per-key, never template-
        wide (§3.2's comparison against template invalidation).
        """
        final_table = self.result_model._meta.db_table
        pk_column = self.result_model._meta.pk_column

        if table == final_table and table != self.main_table:
            # Changes to the *result* table are true incremental view updates:
            # the cached value is a list of this table's rows, so the changed
            # row can be patched straight into every affected entry.
            if event == "insert" and new is not None:
                for key in self.affected_keys(table, new):
                    self._cas_update(key, lambda rows: self._append_row(
                        rows, new, pk_column, self.order_column, self.descending))
                return
            if event == "delete" and old is not None:
                for key in self.affected_keys(table, old):
                    self._cas_update(key, lambda rows: self._remove_row(rows, old, pk_column))
                return
            if event == "update" and new is not None:
                for key in self.affected_keys(table, new or old or {}):
                    self._cas_update(key, lambda rows: self._replace_row(rows, new, pk_column))
                return

        keys: Dict[str, Dict[str, Any]] = {}
        for row in (new, old):
            if row is None:
                continue
            for key in self.affected_keys(table, row):
                keys.setdefault(key, {})
        queue = self._op_queue()
        for key in keys:
            params = self._params_for_key_recompute(table, new or old)
            if params is None:
                # Cannot reconstruct parameters cheaply: invalidate the key.
                if queue is not None:
                    queue.enqueue_delete(self, key)
                elif self.trigger_cache.delete(key):
                    self.stats.invalidations += 1
            else:
                self._recompute_from_key(key)

    def _params_for_key_recompute(self, table: str,
                                  row: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        if row is None:
            return None
        if table == self.main_table:
            return {c: row.get(c) for c in self.where_fields}
        return {}

    def _recompute_from_key(self, key: str) -> None:
        """Recompute a cached entry by decoding its where-values from the key."""
        queue = self._op_queue()
        if queue is not None:
            params = self._decode_key(key)
            if params is None:
                queue.enqueue_delete(self, key)
            else:
                self._recompute_key(key, params)
            return
        current, _token = self.trigger_cache.gets(key)
        if current is None:
            return
        params = self._decode_key(key)
        if params is None:
            if self.trigger_cache.delete(key):
                self.stats.invalidations += 1
            return
        value = self.compute_from_db(params)
        self.trigger_cache.set(key, self._freeze(value), expire=self._expire())
        self.stats.recomputations += 1

    def _decode_key(self, key: str) -> Optional[Dict[str, Any]]:
        """Best-effort inverse of make_key for integer where-field values."""
        suffix = key[len(self.keys.prefix) + 1:] if key.startswith(self.keys.prefix) else None
        if suffix is None:
            return None
        parts = suffix.split(":")
        if len(parts) != len(self.where_fields):
            return None
        params: Dict[str, Any] = {}
        for column, part in zip(self.where_fields, parts):
            try:
                params[column] = int(part)
            except ValueError:
                return None
        return params

    @staticmethod
    def _append_row(rows: List[Dict[str, Any]], new: Dict[str, Any], pk_column: str,
                    order_column: Optional[str], descending: bool) -> List[Dict[str, Any]]:
        out = [r for r in rows if r.get(pk_column) != new.get(pk_column)]
        out.append(dict(new))
        if order_column is not None:
            out.sort(key=lambda r: (r.get(order_column) is None, r.get(order_column)),
                     reverse=descending)
        return out

    @staticmethod
    def _remove_row(rows: List[Dict[str, Any]], old: Dict[str, Any],
                    pk_column: str) -> Optional[List[Dict[str, Any]]]:
        out = [r for r in rows if r.get(pk_column) != old.get(pk_column)]
        return out if len(out) != len(rows) else None

    @staticmethod
    def _replace_row(rows: List[Dict[str, Any]], new: Optional[Dict[str, Any]],
                     pk_column: str) -> Optional[List[Dict[str, Any]]]:
        if new is None:
            return None
        out = []
        changed = False
        for row in rows:
            if row.get(pk_column) == new.get(pk_column):
                out.append(dict(new))
                changed = True
            else:
                out.append(row)
        return out if changed else None
