"""Setup shim.

The project is configured via ``pyproject.toml``; this file exists so that
``pip install -e . --no-build-isolation`` works on environments that lack the
``wheel`` package (legacy editable installs go through setup.py develop).
"""

from setuptools import setup

setup()
