#!/usr/bin/env python
"""Quickstart: declare models, add one ``cacheable`` line, and watch CacheGenie
keep memcached consistent through database triggers.

The declaration is queryset-native: you hand ``cacheable()`` the ORM query
you already write, with ``Param(...)`` marking the per-entry parameter, and
CacheGenie infers the cache class from the query's shape (here a plain
equality filter, so a FeatureQuery).  No strings to mistype — a bad field
name fails right at the declaration.

Run with::

    python examples/quickstart.py
"""

from repro.core import CacheGenie, Param
from repro.memcache import CacheServer
from repro.orm import CharField, ForeignKey, Model, Registry, TextField
from repro.storage import Database

# ---------------------------------------------------------------------------
# 1. Define models (the Django-substitute ORM) and bind them to a database.
# ---------------------------------------------------------------------------
registry = Registry("quickstart")


class User(Model):
    username = CharField(max_length=50, unique=True)

    class Meta:
        registry = registry


class Profile(Model):
    user = ForeignKey(User, related_name="profiles")
    about = TextField(null=True)

    class Meta:
        registry = registry


def main() -> None:
    database = Database()
    registry.bind(database)
    registry.create_all()

    # -----------------------------------------------------------------------
    # 2. Attach CacheGenie: one memcached-like server, transparent interception.
    # -----------------------------------------------------------------------
    genie = CacheGenie(registry=registry, database=database,
                       cache_servers=[CacheServer("cache0")]).activate()

    # The paper's example: cache each user's profile row, keyed by user_id.
    # The queryset IS the declaration; Param("user_id") marks the cache key.
    cached_user_profile = genie.cacheable(
        Profile.objects.filter(user_id=Param("user_id")),
        update_strategy="update-in-place",
        use_transparently=True,
    )
    print("inferred cache class:", type(cached_user_profile).__name__)

    # -----------------------------------------------------------------------
    # 3. Use the ORM exactly as before — no cache-management code anywhere.
    # -----------------------------------------------------------------------
    alice = User.objects.create(username="alice")
    Profile.objects.create(user=alice, about="hello from the quickstart")

    profile = Profile.objects.get(user_id=alice.pk)     # miss -> database, fills cache
    print("first read (from the database):", profile.about)

    profile = Profile.objects.get(user_id=alice.pk)     # hit -> memcached
    print("second read (from the cache):  ", profile.about)

    # Writes go straight to the database; the generated trigger updates the
    # cached entry in place, so the next read sees fresh data from the cache.
    Profile.objects.filter(user_id=alice.pk).update(about="updated through a trigger")
    profile = Profile.objects.get(user_id=alice.pk)
    print("after the write (cache, fresh):", profile.about)

    stats = cached_user_profile.stats
    print(f"\ncache hits={stats.cache_hits} misses={stats.cache_misses} "
          f"in-place updates={stats.updates_applied}")
    print(f"generated triggers: {genie.trigger_count} "
          f"({genie.generated_trigger_lines} lines of trigger code)")

    genie.deactivate()


if __name__ == "__main__":
    main()
