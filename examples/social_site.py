#!/usr/bin/env python
"""Porting a full application: the Pinax-substitute social network.

This example mirrors §5 of the paper: seed a social-networking dataset, add
the 14 cached-object definitions (the entire "port"), then browse the site
and report cache effectiveness and programmer-effort numbers.

Run with::

    python examples/social_site.py
"""

import random

from repro.apps.social import (SeedScale, SocialApplication,
                               install_cached_objects, seed_database,
                               social_registry)
from repro.core import CacheGenie
from repro.memcache import CacheServer
from repro.sim import VirtualClock
from repro.storage import Database


def main() -> None:
    # 1. Stand up the stack: database, registry, schema, dataset.
    clock = VirtualClock(1_000_000.0)
    database = Database(name="social", buffer_pool_pages=128)
    social_registry.unbind()
    social_registry.bind(database)
    social_registry.clock = clock
    social_registry.create_all()
    summary = seed_database(SeedScale(users=100, unique_bookmarks=40,
                                      max_friends_per_user=10))
    print("seeded:", summary.as_dict())

    # 2. The CacheGenie port: 14 queryset-native cacheable() calls — each one
    # is the ORM query itself, and the cache class is inferred from its shape.
    genie = CacheGenie(registry=social_registry, database=database,
                       cache_servers=[CacheServer("cache0"), CacheServer("cache1")]
                       ).activate()
    cached = install_cached_objects(genie)
    print("\nprogrammer effort:", genie.effort_report())
    print("\ninferred cache classes:")
    for name, info in sorted(genie.declaration_report().items()):
        print(f"  {name:30s} -> {info['cache_class']:14s} ({info['api']})")

    # 3. Browse the site the way the evaluation workload does.
    app = SocialApplication(cached_objects=cached, rng=random.Random(7))
    rng = random.Random(42)
    pages = ["LookupBM", "LookupFBM", "CreateBM", "AcceptFR"]
    weights = [50, 30, 10, 10]
    for session in range(30):
        user_id = rng.randint(1, 100)
        app.login(user_id)
        for _ in range(10):
            page = rng.choices(pages, weights)[0]
            app.render(page, user_id)
        app.logout(user_id)

    # 4. Report how well the cache worked.
    totals = genie.stats.totals()
    print(f"\noverall cache hit ratio: {genie.cache_hit_ratio():.2%} "
          f"({totals.cache_hits} hits / {totals.cache_misses} misses)")
    print(f"in-place updates applied by triggers: {totals.updates_applied}")
    print(f"invalidations: {totals.invalidations}, "
          f"recomputations: {totals.recomputations}")
    print("\nper cached object (hit ratio):")
    for name, stats in sorted(genie.stats.per_object.items()):
        reads = stats.cache_hits + stats.cache_misses
        if reads:
            print(f"  {name:30s} {stats.hit_ratio:6.1%}  ({reads} reads)")

    genie.deactivate()
    social_registry.unbind()


if __name__ == "__main__":
    main()
