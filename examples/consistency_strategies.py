#!/usr/bin/env python
"""Comparing consistency strategies, plus the §3.3 serializability extension.

Part 1 runs the same write-then-read sequence under all five registered
:class:`~repro.core.ConsistencyStrategy` objects — the paper's three
(update-in-place, invalidate, expiry) plus leased invalidation and
async-refresh — and prints what each one does to the cache.  A virtual
clock drives the time-based strategies so lease windows and freshness
deadlines visibly elapse.

Part 2 demonstrates the full-consistency extension sketched in §3.3: two
transactions contend on a cached key under two-phase locking, one blocks,
and a deadlock is detected and broken.

Run with::

    python examples/consistency_strategies.py
"""

from repro.core import (AsyncRefreshStrategy, CacheGenie,
                        LeasedInvalidateStrategy, Param,
                        TransactionalCacheSession, TwoPhaseLockingCoordinator,
                        WouldBlock)
from repro.errors import DeadlockError
from repro.memcache import CacheClient, CacheServer
from repro.orm import CharField, ForeignKey, IntegerField, Model, Registry
from repro.sim import VirtualClock
from repro.storage import Database

registry = Registry("strategies")


class Player(Model):
    name = CharField(max_length=40)

    class Meta:
        registry = registry


class Score(Model):
    player = ForeignKey(Player, related_name="scores")
    points = IntegerField(default=0)

    class Meta:
        registry = registry


def compare_strategies() -> None:
    clock = VirtualClock()
    database = Database()
    registry.bind(database)
    registry.create_all()
    genie = CacheGenie(registry=registry, database=database,
                       cache_servers=[CacheServer("cache0", clock=clock)]
                       ).activate()

    players = [Player.objects.create(name=f"player{i}") for i in range(3)]
    for player in players:
        for points in (10, 20, 30):
            Score.objects.create(player=player, points=points)

    # Strategies are first-class objects resolved through a registry:
    # legacy names still work, and instances carry their own windows.
    strategies = ("update-in-place", "invalidate",
                  LeasedInvalidateStrategy(lease_seconds=5.0),
                  AsyncRefreshStrategy(refresh_seconds=0.5),
                  "expiry")
    print("strategy comparison (cached count of a player's scores)\n")
    for strategy in strategies:
        # All declarations share one query shape (the count of a player's
        # scores), and CacheGenie rejects two live cached objects with the
        # same shape — so each strategy's object is removed before the next
        # one is declared.
        label = strategy if isinstance(strategy, str) else strategy.name
        options = {"expiry_seconds": 60} if strategy == "expiry" else {}
        cached = genie.cacheable(
            Score.objects.filter(player_id=Param("player_id")).count(),
            name=f"score_count_{label}",
            update_strategy=strategy,
            use_transparently=False, **options)
        player = players[0]
        before = cached.evaluate(player_id=player.pk)
        Score.objects.create(player=player, points=99)          # a write
        clock.advance(1.0)  # time passes: async-refresh entries go stale
        in_cache = cached.peek(player_id=player.pk)
        after = cached.evaluate(player_id=player.pk)
        served_stale = cached.stats.stale_served > 0
        print(f"  {label:18s} cached-before={before}  "
              f"cache-entry-after-write={in_cache!r}  next-read={after}"
              f"{'  (served stale, refreshing in background)' if served_stale else ''}")
        Score.objects.filter(player_id=player.pk, points=99).delete()
        genie.remove_cached_object(cached.name)

    print("\n(update-in-place keeps the entry fresh; invalidate drops it so the\n"
          " next read recomputes; leased invalidation serves the retained stale\n"
          " value while one reader refreshes; async-refresh serves stale past its\n"
          " freshness deadline and refreshes in the background; expiry leaves it\n"
          " stale until the TTL fires.)")
    genie.deactivate()


def demonstrate_two_phase_locking() -> None:
    print("\n§3.3 extension: two-phase locking over cache keys\n")
    coordinator = TwoPhaseLockingCoordinator()
    cache = CacheClient([CacheServer("txn-cache")])
    cache.set("profile:42", {"name": "alice"})

    writer = TransactionalCacheSession(coordinator, cache)
    reader = TransactionalCacheSession(coordinator, cache)

    writer.set("profile:42", {"name": "alice (edited)"})
    try:
        reader.get("profile:42")
    except WouldBlock as exc:
        print(f"  reader blocked: {exc}")
    writer.commit()
    print(f"  after writer commits, reader sees: {reader.get('profile:42')}")
    reader.commit()

    # Deadlock: two transactions lock keys in opposite orders.
    t1 = TransactionalCacheSession(coordinator, cache)
    t2 = TransactionalCacheSession(coordinator, cache)
    t1.set("key:a", 1)
    t2.set("key:b", 2)
    try:
        t1.set("key:b", 1)
    except WouldBlock:
        print("  t1 waits for t2 on key:b")
    try:
        t2.set("key:a", 2)
    except DeadlockError as exc:
        print(f"  deadlock detected and broken: {exc}")
        t2.abort()
    t1.commit()


if __name__ == "__main__":
    compare_strategies()
    demonstrate_two_phase_locking()
