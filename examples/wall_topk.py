#!/usr/bin/env python
"""The paper's §3.2 worked example: a Top-K cache for the latest wall posts.

Creates the ``wall`` table, declares the ``latest_wall_posts`` TopKQuery
cached object (K=20), and shows how the automatically generated INSERT /
DELETE / UPDATE triggers keep the cached, ordered list fresh — including the
reserve rows that absorb deletes without recomputation.

Run with::

    python examples/wall_topk.py
"""

from repro.apps.social import User, WallPost, social_registry
from repro.core import CacheGenie, Param
from repro.memcache import CacheServer
from repro.storage import Database


def show(cached, user_id, label):
    rows = cached.evaluate(user_id=user_id)
    posts = ", ".join(f"{row['content'][:12]!r}@{row['date_posted']:.0f}" for row in rows[:5])
    print(f"{label:32s} top-{len(rows)}: [{posts} ...]")


def main() -> None:
    database = Database()
    social_registry.unbind()
    social_registry.bind(database)
    social_registry.create_all()

    genie = CacheGenie(registry=social_registry, database=database,
                       cache_servers=[CacheServer("cache0")]).activate()

    # The cached-object definition is the Top-K queryset itself: the ordering
    # and the [:20] slice are what make CacheGenie infer a TopKQuery (K=20).
    latest_wall_posts = genie.cacheable(
        WallPost.objects.filter(user_id=Param("user_id"))
        .order_by("-date_posted")[:20])

    print("generated triggers on the wall table:")
    for trigger in database.triggers.list_triggers("wall_post"):
        print("  -", trigger.name)

    owner = User.objects.create(username="wall-owner")
    friend = User.objects.create(username="friend")
    for i in range(30):
        WallPost.objects.create(user=owner, sender=friend,
                                content=f"post number {i}", date_posted=float(i))

    show(latest_wall_posts, owner.pk, "initial load (fills the cache)")

    # An INSERT finds its position in the cached list via the trigger.
    WallPost.objects.create(user=owner, sender=friend,
                            content="breaking news!", date_posted=1000.0)
    show(latest_wall_posts, owner.pk, "after inserting a newer post")

    # A DELETE consumes the reserve rows without touching the database.
    newest = WallPost.objects.filter(user_id=owner.pk).order_by("-date_posted")[0]
    WallPost.objects.filter(id=newest.pk).delete()
    show(latest_wall_posts, owner.pk, "after deleting the newest post")

    # An UPDATE repositions the post inside the cached list.
    oldest_cached = WallPost.objects.filter(user_id=owner.pk).order_by("date_posted")[0]
    WallPost.objects.filter(id=oldest_cached.pk).update(date_posted=2000.0)
    show(latest_wall_posts, owner.pk, "after bumping an old post to the top")

    stats = latest_wall_posts.stats
    print(f"\ntrigger invocations: {stats.trigger_invocations}, "
          f"in-place updates: {stats.updates_applied}, "
          f"recomputations: {stats.recomputations}")

    genie.deactivate()
    social_registry.unbind()


if __name__ == "__main__":
    main()
