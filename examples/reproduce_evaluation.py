#!/usr/bin/env python
"""Reproduce the paper's headline evaluation numbers in one script.

Runs a scaled-down version of Experiment 1 (NoCache vs Invalidate vs Update)
plus the two §5.3 microbenchmarks and the §5.2 programmer-effort accounting,
and prints the paper-style tables.  The full parameter sweeps live in
``benchmarks/`` — this script is the quick, human-readable tour.

Run with::

    python examples/reproduce_evaluation.py
"""

from repro.bench import (experiment1, micro_lookup, micro_trigger,
                         programmer_effort, render_effort, render_experiment1,
                         render_micro_lookup, render_micro_trigger, table1)


def main() -> None:
    print("=" * 72)
    print("Microbenchmarks (§5.3)")
    print("=" * 72)
    print(render_micro_lookup(micro_lookup()))
    print()
    print(render_micro_trigger(micro_trigger()))

    print()
    print("=" * 72)
    print("Programmer effort (§5.2)")
    print("=" * 72)
    print(render_effort(programmer_effort()))

    print()
    print("=" * 72)
    print("Experiment 1 — throughput and latency vs clients (Fig 2a/2b, Table 2)")
    print("=" * 72)
    result = experiment1(client_counts=(1, 5, 15, 30))
    print(render_experiment1(result))
    update_speedup = result.speedup_over_nocache("Update", client_index=2)
    invalidate_speedup = result.speedup_over_nocache("Invalidate", client_index=2)
    print()
    print(f"Speedup over NoCache at 15 clients:  Update {update_speedup:.2f}x, "
          f"Invalidate {invalidate_speedup:.2f}x   (paper: 2-2.5x)")

    print()
    print("=" * 72)
    print("Table 1 — system comparison")
    print("=" * 72)
    print(table1())


if __name__ == "__main__":
    main()
