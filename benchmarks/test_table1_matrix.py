"""Table 1: qualitative comparison of CacheGenie with representative systems.

The table is a design-space matrix rather than a measurement; the benchmark
emits it (for EXPERIMENTS.md) and checks the claims that are verifiable
against this implementation: CacheGenie requires no source-code modifications
beyond cached-object definitions, serves no stale data, and keeps the cache
coherent via incremental update-in-place.
"""

from repro.bench import table1
from repro.bench.reporting import TABLE1_ROWS


def test_table1_comparison_matrix(benchmark, save_result):
    rendered = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_result("table1_matrix", rendered)

    cachegenie = next(r for r in TABLE1_ROWS if r["system"] == "CacheGenie")
    assert cachegenie["granularity"] == "Caching abstractions"
    assert cachegenie["source_changes"] == "None"
    assert cachegenie["stale_data"] == "No"
    assert cachegenie["coherence"] == "Incremental update-in-place"

    # Every system in the paper's Table 1 appears in the rendering.
    for row in TABLE1_ROWS:
        assert row["system"] in rendered
