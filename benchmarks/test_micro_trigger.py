"""§5.3 microbenchmark: trigger overhead on INSERT.

Paper: a plain INSERT takes ~6.3 ms, a no-op trigger raises it to ~6.5 ms,
opening a remote memcached connection from the trigger doubles it to ~11.9 ms,
and each additional memcached operation inside the trigger adds ~0.2 ms —
"the main overhead in triggers comes from opening remote connections".
"""

from repro.bench import micro_trigger, render_micro_trigger


def test_micro_trigger_insert_overhead(benchmark, save_result):
    result = benchmark.pedantic(micro_trigger, rounds=1, iterations=1)
    save_result("micro_trigger", render_micro_trigger(result))

    # Shape 1: a no-op trigger adds a small fraction of a millisecond.
    assert 0.0 < result.noop_overhead_ms < 1.0
    # Shape 2: the remote-connection trigger dominates the overhead (paper:
    # 5.4 ms of the 5.6 ms total added cost).
    assert result.connection_overhead_ms > 5 * result.noop_overhead_ms
    # Shape 3: each in-trigger cache op is ~0.2 ms.
    assert 0.05 <= result.per_cache_op_ms <= 0.5
    # Ordering: plain < no-op trigger < cache-connected trigger.
    assert (result.plain_insert_ms < result.noop_trigger_insert_ms
            < result.cache_trigger_insert_ms)
