"""Experiment 4 (Figure 3c): throughput vs cache size.

Paper findings reproduced here:

* throughput rises with cache size until it plateaus — Invalidate plateaus at
  a smaller cache than Update, because invalidation keeps reclaiming space
  while update-in-place retains every entry it ever filled;
* even the smallest cache size evaluated keeps the cached configurations
  comfortably ahead of NoCache (paper: >=2x with a 64 MB cache).
"""

from repro.bench import (INVALIDATE_SCENARIO, UPDATE_SCENARIO, experiment4,
                         render_experiment4)

# The scaled-down workload's full cached working set is ~100 KB (the paper's
# is ~hundreds of MB against a 512 MB cache); the sweep therefore covers
# 16 KB - 512 KB, crossing from heavy eviction pressure to "everything fits".
CACHE_SIZES = (16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024,
               256 * 1024, 512 * 1024)


def test_experiment4_cache_size(benchmark, save_result):
    result = benchmark.pedantic(
        experiment4, kwargs={"cache_sizes_bytes": CACHE_SIZES}, rounds=1, iterations=1)
    save_result("exp4_cache_size", render_experiment4(result))

    update = result.throughput[UPDATE_SCENARIO]
    invalidate = result.throughput[INVALIDATE_SCENARIO]

    # Larger caches never hurt: the largest size is at least as good as the
    # smallest for both strategies.
    assert update[-1] >= update[0] * 0.95
    assert invalidate[-1] >= invalidate[0] * 0.95

    # Small caches evict (the pressure the experiment is about) ...
    assert result.evictions[UPDATE_SCENARIO][0] > 0
    # ... while the largest cache does not.
    assert result.evictions[UPDATE_SCENARIO][-1] == 0

    # Update needs at least as much cache as Invalidate to plateau.
    assert result.plateau_size(UPDATE_SCENARIO) >= result.plateau_size(INVALIDATE_SCENARIO)

    # Even the smallest cache keeps the cached systems well ahead of NoCache.
    assert update[0] >= result.nocache_reference * 1.5
    assert invalidate[0] >= result.nocache_reference * 1.4
