"""Ablation: reusing memcached connections across triggers (§5.3 future work).

The paper identifies opening a remote memcached connection inside each
trigger as the dominant trigger cost and proposes connection reuse as future
work.  This ablation runs the Update configuration with and without the
optimization and measures how much of Experiment 5's trigger overhead it
recovers.
"""

from repro.bench import (DEFAULT_WORKLOAD, ScenarioConfig, UPDATE_SCENARIO,
                         format_table, run_scenario)
from repro.bench.experiments import DEFAULT_SEED_SCALE, _scenario_config


def run_ablation():
    baseline = run_scenario(_scenario_config(UPDATE_SCENARIO))
    reuse = run_scenario(_scenario_config(UPDATE_SCENARIO,
                                          reuse_trigger_connections=True))
    ideal = run_scenario(_scenario_config(UPDATE_SCENARIO, triggers_enabled=False))
    return {"baseline": baseline, "reuse": reuse, "ideal": ideal}


def test_trigger_connection_reuse_ablation(benchmark, save_result):
    runs = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    baseline, reuse, ideal = runs["baseline"], runs["reuse"], runs["ideal"]

    rows = [
        ["Update (connection per trigger)", f"{baseline.throughput:.1f}"],
        ["Update + connection reuse", f"{reuse.throughput:.1f}"],
        ["Ideal (no triggers)", f"{ideal.throughput:.1f}"],
    ]
    save_result("ablation_connection_reuse",
                "Ablation - trigger connection reuse (Update scenario)\n" +
                format_table(["Configuration", "Throughput (req/s)"], rows))

    # Connection reuse recovers part of the trigger overhead...
    assert reuse.throughput >= baseline.throughput
    # ...but cannot beat the trigger-free ideal system.
    assert reuse.throughput <= ideal.throughput * 1.05
