"""§5.2 programmer effort: cached objects, generated triggers, generated LoC.

Paper: porting the Pinax applications required 14 cached-object definitions
(~20 changed lines of application code); CacheGenie generated 48 triggers
comprising ~1720 lines of Python.  Without CacheGenie the developer would
write roughly those 1720 lines of cache-management code by hand, spread over
22+ explicit call sites.
"""

from repro.bench import programmer_effort, render_effort


def test_programmer_effort_table(benchmark, save_result):
    result = benchmark.pedantic(programmer_effort, rounds=1, iterations=1)
    save_result("effort_table", render_effort(result))

    # Exactly the paper's 14 cached objects are declared for the ported app.
    assert result.cached_objects == 14
    # Application-side changes stay in the tens of lines, as in the paper.
    assert result.application_lines_changed <= 25
    # Triggers: 3 per (cached object, underlying table); chains span several
    # tables, so the total lands in the same range as the paper's 48.
    assert 40 <= result.generated_triggers <= 60
    # Generated trigger code is in the same order as the paper's ~1720 lines.
    assert 1000 <= result.generated_trigger_lines <= 3000
