"""Experiment 5: trigger overhead on the full social-networking workload.

Paper findings reproduced here: compared to an "ideal" system whose cache is
kept fresh for free (the same query trace replayed with triggers removed),
trigger-based consistency costs 22–28% of throughput (Update: 75 vs 104
req/s, Invalidate: 62 vs 80 req/s).  The reproduction asserts the overhead
lands in a comparable band.
"""

from repro.bench import (INVALIDATE_SCENARIO, UPDATE_SCENARIO, experiment5,
                         render_experiment5)


def test_experiment5_trigger_overhead(benchmark, save_result):
    result = benchmark.pedantic(experiment5, rounds=1, iterations=1)
    save_result("exp5_trigger_overhead", render_experiment5(result))

    for scenario in (UPDATE_SCENARIO, INVALIDATE_SCENARIO):
        # The ideal (trigger-free) system is faster...
        assert result.ideal[scenario] > result.with_triggers[scenario]
        # ...by an overhead fraction below the paper's 22-28%: the default
        # batched protocol coalesces each transaction's trigger ops into a
        # commit-time gets_multi/cas_multi flush, so consistency costs a
        # fraction of the paper's per-operation round trips.  (Run with
        # batch_ops=False to land back in the paper's neighbourhood.)
        overhead = result.overhead_fraction(scenario)
        assert 0.02 <= overhead <= 0.45
