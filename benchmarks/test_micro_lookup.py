"""§5.3 microbenchmark: database B+Tree lookups vs memcached gets.

Paper: "simple B+Tree lookup on the database takes 10–25× longer on the
database, suggesting there is significant benefit in caching."
"""

from repro.bench import micro_lookup, render_micro_lookup


def test_micro_lookup_db_vs_cache(benchmark, save_result):
    result = benchmark.pedantic(micro_lookup, rounds=1, iterations=1)
    save_result("micro_lookup", render_micro_lookup(result))

    # Shape: the cache is several times faster than the database for point
    # lookups (our calibrated engine lands slightly below the paper's 10-25x
    # band; see EXPERIMENTS.md).
    assert result.cache_lookup_ms < result.db_lookup_ms
    assert result.ratio >= 4.0
