"""Experiment 1 (Figure 2a, Figure 2b, Table 2): performance vs client count.

Paper findings reproduced here:

* CacheGenie (Invalidate/Update) improves page-load throughput by 2–2.5×
  over NoCache for the default 80/20 read/write workload (Figure 2a);
* Update achieves higher throughput than Invalidate;
* latency is lowest for Update, highest for NoCache (Figure 2b);
* per-page-type latency (Table 2): the read pages (LookupBM/LookupFBM) are
  far cheaper with caching, while the write pages (CreateBM/AcceptFR) get
  slower because triggers must keep the cache consistent.
"""

from repro.bench import (INVALIDATE_SCENARIO, NO_CACHE, UPDATE_SCENARIO,
                         experiment1, render_experiment1)

CLIENT_COUNTS = (1, 5, 10, 15, 25, 40)


def test_experiment1_throughput_latency(benchmark, save_result):
    result = benchmark.pedantic(
        experiment1, kwargs={"client_counts": CLIENT_COUNTS}, rounds=1, iterations=1)
    save_result("exp1_clients", render_experiment1(result))

    at_15 = CLIENT_COUNTS.index(15)

    # Figure 2a: 2-2.5x throughput improvement over NoCache at 15 clients.
    # We accept a wider band: the scaled-down dataset stretches it, and the
    # now-default batched cache protocol (batch_ops) lifts the cached
    # scenarios above the paper's eager-trigger numbers.
    update_speedup = result.speedup_over_nocache(UPDATE_SCENARIO, at_15)
    invalidate_speedup = result.speedup_over_nocache(INVALIDATE_SCENARIO, at_15)
    assert 1.7 <= update_speedup <= 4.5
    assert 1.6 <= invalidate_speedup <= 4.5

    # Update beats (or at worst matches) Invalidate at the peak.
    assert result.throughput[UPDATE_SCENARIO][at_15] >= \
        result.throughput[INVALIDATE_SCENARIO][at_15] * 0.98

    # Throughput saturates: the last point is not much higher than at 15 clients.
    for scenario in (NO_CACHE, UPDATE_SCENARIO, INVALIDATE_SCENARIO):
        series = result.throughput[scenario]
        assert series[-1] <= series[at_15] * 1.3

    # Figure 2b: mean latency ordering at 15 clients — Update <= Invalidate < NoCache.
    assert result.latency[UPDATE_SCENARIO][at_15] <= \
        result.latency[INVALIDATE_SCENARIO][at_15] * 1.05
    assert result.latency[INVALIDATE_SCENARIO][at_15] < result.latency[NO_CACHE][at_15]

    # Table 2: read pages benefit enormously from caching, while write pages
    # benefit far less — their latency is dominated by the writes plus the
    # trigger work that keeps the cache consistent.  (In the paper the write
    # pages get absolutely slower; in our scaled stack they merely gain much
    # less than the read pages, because every page also carries read queries
    # that the cache accelerates — see EXPERIMENTS.md.)
    nocache_pages = result.latency_by_page[NO_CACHE]
    update_pages = result.latency_by_page[UPDATE_SCENARIO]
    assert update_pages["LookupFBM"] < nocache_pages["LookupFBM"]
    assert update_pages["LookupBM"] < nocache_pages["LookupBM"]
    read_gain = nocache_pages["LookupFBM"] / update_pages["LookupFBM"]
    write_gain = nocache_pages["CreateBM"] / update_pages["CreateBM"]
    assert write_gain < read_gain
    # Within the cached system itself, the write pages are the slow ones.
    assert update_pages["CreateBM"] > update_pages["LookupBM"]
    assert update_pages["AcceptFR"] > update_pages["LookupFBM"]

    # The cached configurations serve the bulk of reads from memcached.
    assert result.cache_hit_ratio[UPDATE_SCENARIO] > 0.8
    assert result.cache_hit_ratio[UPDATE_SCENARIO] >= \
        result.cache_hit_ratio[INVALIDATE_SCENARIO]
