"""Experiment 3 (Figure 3b): throughput vs the zipf user-distribution parameter.

Paper findings reproduced here: with a more skewed user distribution (lower
zipf parameter a — a few frequent users account for most sessions) the cached
configurations gain up to ~1.5×, because frequent users' data stays cached
and their residual database queries stay buffer-resident; NoCache barely
moves, since it is CPU-bound on repeated query computation either way.
"""

from repro.bench import (INVALIDATE_SCENARIO, NO_CACHE, UPDATE_SCENARIO,
                         experiment3, render_experiment3)

ZIPF_PARAMETERS = (1.2, 1.4, 1.6, 1.8, 2.0)


def test_experiment3_user_distribution(benchmark, save_result):
    result = benchmark.pedantic(
        experiment3, kwargs={"zipf_parameters": ZIPF_PARAMETERS}, rounds=1, iterations=1)
    save_result("exp3_zipf", render_experiment3(result))

    update = result.throughput[UPDATE_SCENARIO]
    nocache = result.throughput[NO_CACHE]

    # Cached throughput at the most skewed point (a=1.2) exceeds the least
    # skewed point (a=2.0); the paper reports about 1.5x.
    assert result.skew_gain(UPDATE_SCENARIO) >= 1.05
    assert result.skew_gain(INVALIDATE_SCENARIO) >= 1.05

    # NoCache shows much less sensitivity to the skew than the cached systems.
    nocache_gain = result.skew_gain(NO_CACHE)
    assert nocache_gain <= result.skew_gain(UPDATE_SCENARIO) + 0.15

    # The cached systems stay ahead of NoCache across the whole sweep.
    for i in range(len(ZIPF_PARAMETERS)):
        assert update[i] > nocache[i]
