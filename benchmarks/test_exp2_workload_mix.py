"""Experiment 2 (Figure 3a): throughput vs percentage of read pages.

Paper findings reproduced here:

* with 0% reads the paper's eager triggers provide no benefit (slightly
  worse, because triggers slow the writes down); with the now-default
  batched protocol the commit-time flush amortizes trigger cost, so the
  cached scenarios beat NoCache even on an all-write workload — the band
  below encodes the batched behaviour (``--batch-ops off`` restores the
  paper's);
* benefit grows with the read fraction;
* at 100% reads the cached configurations reach ~8× NoCache (our scaled-down
  stack lands lower but well above the mixed-workload factor);
* Update and Invalidate converge at 100% reads (nothing is ever invalidated).
"""

from repro.bench import (INVALIDATE_SCENARIO, NO_CACHE, UPDATE_SCENARIO,
                         experiment2, render_experiment2)

READ_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_experiment2_read_write_mix(benchmark, save_result):
    result = benchmark.pedantic(
        experiment2, kwargs={"read_fractions": READ_FRACTIONS}, rounds=1, iterations=1)
    save_result("exp2_workload_mix", render_experiment2(result))

    update = result.throughput[UPDATE_SCENARIO]
    invalidate = result.throughput[INVALIDATE_SCENARIO]
    nocache = result.throughput[NO_CACHE]

    # 0% reads: with batched (commit-time) trigger propagation the cached
    # systems match or beat NoCache even on pure writes — but stay well
    # short of the read-heavy benefit measured below.
    assert update[0] >= nocache[0] * 0.85
    assert invalidate[0] >= nocache[0] * 0.85
    update_gain_at_zero = update[0] / nocache[0]

    # The caching benefit grows with the read fraction.
    update_gain = [update[i] / nocache[i] for i in range(len(READ_FRACTIONS))]
    assert update_gain[-1] > update_gain[2] > update_gain[0]
    assert update_gain[-1] > 2 * update_gain_at_zero

    # 100% reads: the benefit is far larger than at the 80/20 default
    # (the paper reports 8x; our scaled stack reaches >=4x).
    assert update_gain[-1] >= 4.0

    # Update and Invalidate converge at 100% reads.
    assert abs(update[-1] - invalidate[-1]) / update[-1] < 0.1

    # The cached systems' absolute throughput grows monotonically (within
    # noise) as reads increase.
    assert update[-1] > update[0]
