"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure from the paper's evaluation
(§5).  Besides the timing captured by pytest-benchmark, every benchmark
renders its result in the paper's row/series format and saves it under
``benchmarks/_results/`` so the numbers can be inspected (and are quoted in
EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Save a rendered table under benchmarks/_results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}\n")

    return _save
